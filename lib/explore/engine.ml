module Env = Guarded.Env
module State = Guarded.State
module Var = Guarded.Var
module Domain = Guarded.Domain
module Compile = Guarded.Compile

type backend = Eager | Lazy | Parallel
type storage = Auto | Direct | Probed

type t = {
  backend : backend;
  space : Space.t;
  codec : Codec.t;
  budget : int;
  jobs : int;  (* worker-domain count for the parallel backend *)
  packed : bool;  (* keys are bit-packed codes instead of dense ids *)
  direct : bool;  (* visited sets are direct-mapped over the dense range *)
  obs : Obs.Ctx.t;
  mutable csr : (Compile.program * Tsys.t) option;
      (* Cache of the eager CSR build, keyed by physical equality of the
         compiled program: repeated queries against the same program (the
         common case: check_unfair then check_fair) build it once. *)
  mutable last_visited_bytes : int;
  mutable last_frontier_bytes : int;
}

exception Region_overflow of int

type roots =
  | All
  | Pred of (Guarded.State.t -> bool)
  | Seeds of Guarded.State.t list

type region = {
  graph : int Dgraph.Digraph.t;
  node_key : int array;
  terminal : bool array;
  explored : int;
  node_of_key : int -> int;
}

(* Direct-mapped visited tables pay 4 bytes per state of the whole dense
   range up front, so they must both be materializable and not dwarf the
   states the budget lets the search touch. *)
let direct_auto_cap = 1 lsl 28
let direct_hard_cap = 1 lsl 30

let create ?(backend = Eager) ?(max_states = 2_000_000) ?jobs
    ?(storage = Auto) ?(packed_keys = false) ?(obs = Obs.Ctx.disabled) env =
  let jobs =
    match jobs with
    | Some j when j > 0 -> j
    | Some j -> invalid_arg (Printf.sprintf "Engine.create: jobs must be positive (got %d)" j)
    | None -> Par.Pool.default_jobs ()
  in
  match backend with
  | Eager ->
      if packed_keys then
        invalid_arg "Engine.create: packed keys need the lazy or parallel backend";
      let space = Space.create ~max_states env in
      { backend; space; codec = Space.codec space; budget = Space.size space;
        jobs; packed = false; direct = false; obs; csr = None;
        last_visited_bytes = 0; last_frontier_bytes = 0 }
  | Lazy | Parallel ->
      let space = Space.create_unbounded env in
      let codec = Space.codec space in
      if packed_keys then Codec.require_packed codec;
      let direct =
        match storage with
        | Probed -> false
        | Direct ->
            if packed_keys then
              invalid_arg "Engine.create: direct storage needs dense keys";
            if Space.size space > direct_hard_cap then
              invalid_arg
                (Printf.sprintf
                   "Engine.create: direct storage needs a dense range of at \
                    most 2^30 slots (space has %d)"
                   (Space.size space));
            true
        | Auto ->
            (not packed_keys)
            && Space.size space <= direct_auto_cap
            && Space.size space / 8 <= max_states
      in
      { backend; space; codec; budget = max_states; jobs; packed = packed_keys;
        direct; obs; csr = None;
        last_visited_bytes = 0; last_frontier_bytes = 0 }

let of_space ?(obs = Obs.Ctx.disabled) space =
  { backend = Eager; space; codec = Space.codec space;
    budget = Space.size space; jobs = 1; packed = false; direct = false; obs;
    csr = None; last_visited_bytes = 0; last_frontier_bytes = 0 }

let backend t = t.backend

let backend_name t =
  match t.backend with Eager -> "eager" | Lazy -> "lazy" | Parallel -> "parallel"

let space t = t.space
let codec t = t.codec
let env t = Space.env t.space
let max_states t = t.budget
let jobs t = t.jobs
let obs t = t.obs
let packed_keys t = t.packed

let storage_name t =
  match t.backend with
  | Eager -> "csr"
  | Lazy | Parallel -> if t.direct then "direct" else "probed"

let storage_bytes t = t.last_visited_bytes + t.last_frontier_bytes

(* --- state keys: how node_key / node_of_key values read --- *)

let encode_key t s =
  if t.packed then Codec.encode_packed t.codec s else Space.encode t.space s

let decode_key_into t key s =
  if t.packed then Codec.decode_packed_into t.codec key s
  else Space.decode_into t.space key s

let decode_key t key =
  let s = State.make (env t) in
  decode_key_into t key s;
  s

let make_visited t =
  let direct =
    match t.backend with
    (* eager engines only need a Flatset for layered searches
       (Faultspan); their space is already bounded, so direct-map it
       whenever the range is materializable *)
    | Eager -> Space.size t.space <= direct_auto_cap
    | Lazy | Parallel -> t.direct
  in
  if direct then Flatset.direct ~size:(Space.size t.space)
  else Flatset.probed ()

let tsys t cp =
  match t.csr with
  | Some (cp', tsys) when cp' == cp -> tsys
  | _ ->
      let tsys = Tsys.build cp t.space in
      t.csr <- Some (cp, tsys);
      tsys

(* Growable int array for node keys discovered in order. *)
module Vec = Par.Ivec

(* --- eager backend: answer from the materialized CSR relation --- *)

let eager_region t cp ~from ~target =
  let space = t.space in
  let ts = tsys t cp in
  let n = Space.size space in
  let reach =
    match from with
    | All -> None (* every state is a root: reachability is the whole space *)
    | Pred p -> Some (Tsys.reachable ts (Space.satisfying space p))
    | Seeds l -> Some (Tsys.reachable ts (List.map (Space.encode space) l))
  in
  let member = Bitset.create n in
  let buf = State.make (Space.env space) in
  let consider id =
    Space.decode_into space id buf;
    if not (target buf) then Bitset.add member id
  in
  (match reach with
  | None -> for id = 0 to n - 1 do consider id done
  | Some r -> Bitset.iter r consider);
  let graph, node_to_state, state_to_node =
    Tsys.region_graph_full ts ~member:(Bitset.mem member)
  in
  {
    graph;
    node_key = node_to_state;
    terminal = Array.map (Tsys.is_terminal ts) node_to_state;
    explored = (match reach with None -> n | Some r -> Bitset.cardinal r);
    node_of_key = state_to_node;
  }

(* --- lazy backend: BFS generating successors on demand --- *)

let check_budget t visited =
  if visited > t.budget then raise (Region_overflow visited)

(* Seed the search with the root states. [visit] classifies a state on
   first sight (assigning it a member node id when the target fails) and
   enqueues it. [All]/[Pred] need a sweep, so they require the space to
   fit the budget; [Seeds] does not. Sweeps run in dense id order — the
   canonical root order — whatever the key representation; under packed
   keys the id is re-encoded from the state buffer. *)
let seed_roots t ~from visit =
  let space = t.space in
  match from with
  | Seeds l -> List.iter (fun s -> visit (encode_key t s) s) l
  | All | Pred _ ->
      check_budget t (Space.size space);
      let p = match from with Pred p -> p | _ -> fun _ -> true in
      if t.packed then
        Space.iter space (fun _ s ->
            if p s then visit (Codec.encode_packed t.codec s) s)
      else Space.iter space (fun id s -> if p s then visit id s)

let lazy_region t cp ~from ~target =
  let actions = cp.Compile.actions in
  let n_actions = Array.length actions in
  let visited = make_visited t in
  let node_keys = Vec.create () in
  let terminal_nodes = ref [] in
  let edges = ref [] in
  let queue = Flatqueue.create () in
  let explored = ref 0 in
  let visit key s =
    if not (Flatset.mem visited key) then begin
      incr explored;
      check_budget t !explored;
      let node = if target s then -1 else Vec.push node_keys key in
      Flatset.add visited key node;
      Flatqueue.push queue key
    end
  in
  seed_roots t ~from visit;
  let buf = State.make (env t) in
  let post = State.make (env t) in
  let pops = ref 0 in
  while not (Flatqueue.is_empty queue) do
    let key = Flatqueue.pop queue in
    incr pops;
    (* progress checkpoints at chunk granularity, never per state *)
    if Obs.Ctx.enabled t.obs && !pops land 8191 = 0 then
      Obs.Ctx.tick t.obs ~label:"engine.lazy" ~states:!explored
        ~frontier:(Flatqueue.length queue) ();
    decode_key_into t key buf;
    let src_node = Flatset.find_def visited key (-2) in
    let out_degree = ref 0 in
    for a = 0 to n_actions - 1 do
      let ca = actions.(a) in
      if ca.Compile.enabled buf then begin
        incr out_degree;
        ca.Compile.apply_into buf post;
        let dst_key = encode_key t post in
        visit dst_key post;
        if src_node >= 0 then begin
          let dst_node = Flatset.find_def visited dst_key (-2) in
          if dst_node >= 0 then edges := (src_node, dst_node, a) :: !edges
        end
      end
    done;
    if src_node >= 0 && !out_degree = 0 then
      terminal_nodes := src_node :: !terminal_nodes
  done;
  t.last_visited_bytes <- Flatset.bytes visited;
  t.last_frontier_bytes <- Flatqueue.peak_bytes queue;
  let node_key = Vec.to_array node_keys in
  let n_nodes = Array.length node_key in
  let terminal = Array.make n_nodes false in
  List.iter (fun v -> terminal.(v) <- true) !terminal_nodes;
  let graph = Dgraph.Digraph.of_edges n_nodes (List.rev !edges) in
  let node_of_key key = Flatset.find_def visited key (-1) in
  { graph; node_key; terminal; explored = !explored; node_of_key }

(* --- parallel backend: level-synchronized BFS over a domain pool ---

   Each level runs in two phases. Phase A (parallel): every frontier
   state is expanded on some worker — decode, evaluate every guard,
   apply, encode — against per-worker compiled actions and reusable
   state buffers (the compiled closures carry private scratch, so they
   must not be shared across domains); each successor is annotated with
   a probe of the sharded visited set. Phase B (sequential, cheap):
   successors are committed in frontier order × action order, which is
   exactly the FIFO order of the lazy backend's single queue — so node
   numbering, edge order, the explored count, and the overflow point are
   all bit-identical to [lazy_region] at any job count. The storage
   representation (flat shards, dense or packed keys) never affects the
   commit order, so the determinism contract survives it. *)

(* Phase-A successor tags:
   >= -1 : already-visited key carrying its node id (-1 = non-member);
   -2    : unseen at probe time, target fails (member when committed);
   -3    : unseen at probe time, target holds (non-member). *)

let parallel_region t cp ~from ~target =
  let space = t.space in
  let env = Space.env space in
  let n_actions = Array.length cp.Compile.actions in
  Par.Pool.with_pool ~jobs:t.jobs @@ fun pool ->
  let jobs = Par.Pool.jobs pool in
  let worker_actions =
    Array.init jobs (fun w ->
        if w = 0 then cp.Compile.actions
        else (Compile.program cp.Compile.source).Compile.actions)
  in
  let worker_buf = Array.init jobs (fun _ -> State.make env) in
  let worker_post = Array.init jobs (fun _ -> State.make env) in
  let worker_out = Array.init jobs (fun _ -> Vec.create ()) in
  let visited = Par.Shardmap.create () in
  let node_keys = Vec.create () in
  let terminal_nodes = ref [] in
  let edges = ref [] in
  let explored = ref 0 in
  let frontier_peak = ref 0 in
  let cur_keys = Vec.create () and cur_nodes = Vec.create () in
  let next_keys = Vec.create () and next_nodes = Vec.create () in
  (* First sighting of [key], known absent from [visited]: mirrors the
     lazy backend's [visit] exactly (count, budget check, numbering). *)
  let visit_new key ~member =
    incr explored;
    check_budget t !explored;
    let node = if member then Vec.push node_keys key else -1 in
    Par.Shardmap.add visited key node;
    ignore (Vec.push next_keys key);
    ignore (Vec.push next_nodes node);
    node
  in
  (match from with
  | Seeds l ->
      List.iter
        (fun s ->
          let key = encode_key t s in
          if not (Par.Shardmap.mem visited key) then
            ignore (visit_new key ~member:(not (target s))))
        l
  | All | Pred _ ->
      let n = Space.size space in
      check_budget t n;
      let p = match from with Pred p -> p | _ -> fun _ -> true in
      (* classify every id in parallel, then commit in id order; under
         packed keys phase A also records each qualifying id's key, so
         the sequential commit needs no re-decode *)
      let classes = Bytes.make n '\000' in
      let packed_key = if t.packed then Array.make n 0 else [||] in
      Par.Pool.parallel_for pool ~n (fun ~worker lo hi ->
          let buf = worker_buf.(worker) in
          for id = lo to hi - 1 do
            Space.decode_into space id buf;
            if p buf then begin
              Bytes.unsafe_set classes id
                (if target buf then '\002' else '\001');
              if t.packed then
                packed_key.(id) <- Codec.encode_packed t.codec buf
            end
          done);
      for id = 0 to n - 1 do
        match Bytes.unsafe_get classes id with
        | '\000' -> ()
        | c ->
            let key = if t.packed then packed_key.(id) else id in
            ignore (visit_new key ~member:(c = '\001'))
      done);
  if Obs.Ctx.enabled t.obs then
    Obs.Ctx.emit t.obs "engine.roots" [ ("discovered", Obs.Sink.I !explored) ];
  let level = ref 0 in
  while Vec.len next_keys > 0 do
    Vec.swap cur_keys next_keys;
    Vec.swap cur_nodes next_nodes;
    Vec.clear next_keys;
    Vec.clear next_nodes;
    let len = Vec.len cur_keys in
    if 16 * len > !frontier_peak then frontier_peak := 16 * len;
    let explored_before = !explored in
    let succs = Array.make len [||] in
    Par.Pool.parallel_for pool ~n:len (fun ~worker lo hi ->
        let acts = worker_actions.(worker) in
        let buf = worker_buf.(worker) and post = worker_post.(worker) in
        let out = worker_out.(worker) in
        for i = lo to hi - 1 do
          decode_key_into t (Vec.get cur_keys i) buf;
          Vec.clear out;
          for a = 0 to n_actions - 1 do
            let ca = acts.(a) in
            if ca.Compile.enabled buf then begin
              ca.Compile.apply_into buf post;
              let dst_key = encode_key t post in
              let tag =
                let v = Par.Shardmap.find_def visited dst_key min_int in
                if v <> min_int then v
                else if target post then -3
                else -2
              in
              ignore (Vec.push out a);
              ignore (Vec.push out dst_key);
              ignore (Vec.push out tag)
            end
          done;
          succs.(i) <- Vec.to_array out
        done);
    for i = 0 to len - 1 do
      let src_node = Vec.get cur_nodes i in
      let sc = succs.(i) in
      let m = Array.length sc / 3 in
      for j = 0 to m - 1 do
        let a = sc.(3 * j) in
        let dst_key = sc.((3 * j) + 1) in
        let tag = sc.((3 * j) + 2) in
        let dst_node =
          if tag >= -1 then tag
          else
            (* the same key may already have been committed earlier in
               this merge; only a miss here is a genuine first sighting *)
            let v = Par.Shardmap.find_def visited dst_key min_int in
            if v <> min_int then v
            else visit_new dst_key ~member:(tag = -2)
        in
        if src_node >= 0 && dst_node >= 0 then
          edges := (src_node, dst_node, a) :: !edges
      done;
      if src_node >= 0 && m = 0 then
        terminal_nodes := src_node :: !terminal_nodes
    done;
    if Obs.Ctx.enabled t.obs then begin
      Obs.Metrics.incr (Obs.Ctx.counter t.obs "engine.waves");
      Obs.Ctx.emit t.obs "engine.wave"
        [
          ("level", Obs.Sink.I !level);
          ("frontier", Obs.Sink.I len);
          ("discovered", Obs.Sink.I (!explored - explored_before));
        ];
      Obs.Ctx.tick t.obs ~label:"engine.parallel" ~states:!explored
        ~frontier:(Vec.len next_keys) ~depth:!level ()
    end;
    incr level
  done;
  t.last_visited_bytes <- Par.Shardmap.bytes visited;
  t.last_frontier_bytes <- !frontier_peak;
  let node_key = Vec.to_array node_keys in
  let n_nodes = Array.length node_key in
  let terminal = Array.make n_nodes false in
  List.iter (fun v -> terminal.(v) <- true) !terminal_nodes;
  let graph = Dgraph.Digraph.of_edges n_nodes (List.rev !edges) in
  let node_of_key key = Par.Shardmap.find_def visited key (-1) in
  { graph; node_key; terminal; explored = !explored; node_of_key }

let dispatch_region t cp ~from ~target =
  match t.backend with
  | Eager -> eager_region t cp ~from ~target
  | Lazy -> lazy_region t cp ~from ~target
  | Parallel -> parallel_region t cp ~from ~target

(* Every backend funnels through here, so the reconciliation invariant
   holds uniformly: the [engine.states_discovered] counter equals the sum
   of the [explored] fields over all [engine.region] events. *)
let region t cp ~from ~target =
  if not (Obs.Ctx.enabled t.obs) then dispatch_region t cp ~from ~target
  else begin
    let r =
      Obs.Ctx.time t.obs "engine.region" (fun () ->
          dispatch_region t cp ~from ~target)
    in
    let nodes = Array.length r.node_key in
    let edges = Dgraph.Digraph.edge_count r.graph in
    Obs.Metrics.incr (Obs.Ctx.counter t.obs "engine.regions");
    Obs.Metrics.add (Obs.Ctx.counter t.obs "engine.states_discovered")
      r.explored;
    Obs.Metrics.add (Obs.Ctx.counter t.obs "engine.region_nodes") nodes;
    Obs.Metrics.add (Obs.Ctx.counter t.obs "engine.region_edges") edges;
    (* storage gauges are set post-hoc from totals, so they are as
       job-count-invariant as the search itself *)
    if t.last_visited_bytes > 0 then begin
      Obs.Metrics.set_max
        (Obs.Ctx.gauge t.obs "engine.visited_bytes")
        t.last_visited_bytes;
      Obs.Metrics.set_max
        (Obs.Ctx.gauge t.obs "engine.frontier_peak_bytes")
        t.last_frontier_bytes
    end;
    Obs.Ctx.emit t.obs "engine.region"
      [
        ("backend", Obs.Sink.S (backend_name t));
        ("explored", Obs.Sink.I r.explored);
        ("nodes", Obs.Sink.I nodes);
        ("edges", Obs.Sink.I edges);
      ];
    Obs.Ctx.finish_progress t.obs
      ~label:("engine." ^ backend_name t)
      ~states:r.explored;
    r
  end

let state_of_node t region v = decode_key t region.node_key.(v)

let iter_states t f =
  (match t.backend with
  | Eager -> ()
  | Lazy | Parallel -> check_budget t (Space.size t.space));
  Space.iter t.space (fun _ s -> f s)

let iter_reachable t cp ~from f =
  match from with
  | All -> iter_states t f
  | Pred _ | Seeds _ ->
      let actions = cp.Compile.actions in
      let visited = make_visited t in
      let queue = Flatqueue.create () in
      let explored = ref 0 in
      let visit key =
        if not (Flatset.mem visited key) then begin
          incr explored;
          check_budget t !explored;
          Flatset.add visited key 0;
          Flatqueue.push queue key
        end
      in
      seed_roots t ~from (fun key _ -> visit key);
      let buf = State.make (env t) in
      let post = State.make (env t) in
      while not (Flatqueue.is_empty queue) do
        let key = Flatqueue.pop queue in
        decode_key_into t key buf;
        f buf;
        Array.iter
          (fun (ca : Compile.action) ->
            if ca.enabled buf then begin
              ca.apply_into buf post;
              visit (encode_key t post)
            end)
          actions
      done;
      t.last_visited_bytes <- Flatset.bytes visited;
      t.last_frontier_bytes <- Flatqueue.peak_bytes queue

let ball env ~center ~radius =
  let vars = Env.vars env in
  let n = Array.length vars in
  let acc = ref [] in
  let s = State.copy center in
  let rec go i remaining =
    if i = n then acc := State.copy s :: !acc
    else begin
      go (i + 1) remaining;
      if remaining > 0 then begin
        let d = Var.domain vars.(i) in
        let low =
          match d with
          | Domain.Range { lo; _ } -> lo
          | Domain.Bool | Domain.Enum _ -> 0
        in
        let center_value = State.get_index s i in
        for v = low to low + Domain.size d - 1 do
          if v <> center_value then begin
            State.set_index s i v;
            go (i + 1) (remaining - 1)
          end
        done;
        State.set_index s i center_value
      end
    end
  in
  go 0 radius;
  List.rev !acc
