module Env = Guarded.Env
module State = Guarded.State
module Var = Guarded.Var
module Domain = Guarded.Domain
module Compile = Guarded.Compile

type backend = Eager | Lazy

type t = {
  backend : backend;
  space : Space.t;
  budget : int;
  mutable csr : (Compile.program * Tsys.t) option;
      (* Cache of the eager CSR build, keyed by physical equality of the
         compiled program: repeated queries against the same program (the
         common case: check_unfair then check_fair) build it once. *)
}

exception Region_overflow of int

type roots =
  | All
  | Pred of (Guarded.State.t -> bool)
  | Seeds of Guarded.State.t list

type region = {
  graph : int Dgraph.Digraph.t;
  node_key : int array;
  terminal : bool array;
  explored : int;
  node_of_key : int -> int;
}

let create ?(backend = Eager) ?(max_states = 2_000_000) env =
  match backend with
  | Eager ->
      let space = Space.create ~max_states env in
      { backend; space; budget = Space.size space; csr = None }
  | Lazy ->
      { backend; space = Space.create_unbounded env; budget = max_states;
        csr = None }

let of_space space =
  { backend = Eager; space; budget = Space.size space; csr = None }

let backend t = t.backend
let backend_name t = match t.backend with Eager -> "eager" | Lazy -> "lazy"
let space t = t.space
let env t = Space.env t.space
let max_states t = t.budget

let tsys t cp =
  match t.csr with
  | Some (cp', tsys) when cp' == cp -> tsys
  | _ ->
      let tsys = Tsys.build cp t.space in
      t.csr <- Some (cp, tsys);
      tsys

(* Growable int array for node keys discovered in order. *)
module Vec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 64 0; len = 0 }

  let push v x =
    let i = v.len in
    if i = Array.length v.a then begin
      let b = Array.make (2 * i) 0 in
      Array.blit v.a 0 b 0 i;
      v.a <- b
    end;
    v.a.(i) <- x;
    v.len <- i + 1;
    i

  let to_array v = Array.sub v.a 0 v.len
end

(* --- eager backend: answer from the materialized CSR relation --- *)

let eager_region t cp ~from ~target =
  let space = t.space in
  let ts = tsys t cp in
  let n = Space.size space in
  let reach =
    match from with
    | All -> None (* every state is a root: reachability is the whole space *)
    | Pred p -> Some (Tsys.reachable ts (Space.satisfying space p))
    | Seeds l -> Some (Tsys.reachable ts (List.map (Space.encode space) l))
  in
  let member = Bitset.create n in
  let buf = State.make (Space.env space) in
  let consider id =
    Space.decode_into space id buf;
    if not (target buf) then Bitset.add member id
  in
  (match reach with
  | None -> for id = 0 to n - 1 do consider id done
  | Some r -> Bitset.iter r consider);
  let graph, node_to_state, state_to_node =
    Tsys.region_graph_full ts ~member:(Bitset.mem member)
  in
  {
    graph;
    node_key = node_to_state;
    terminal = Array.map (Tsys.is_terminal ts) node_to_state;
    explored = (match reach with None -> n | Some r -> Bitset.cardinal r);
    node_of_key = state_to_node;
  }

(* --- lazy backend: BFS generating successors on demand --- *)

let check_budget t visited =
  if visited > t.budget then raise (Region_overflow visited)

(* Seed the search with the root states. [visit] classifies a state on
   first sight (assigning it a member node id when the target fails) and
   enqueues it. [All]/[Pred] need a sweep, so they require the space to
   fit the budget; [Seeds] does not. *)
let seed_roots t ~from visit =
  let space = t.space in
  match from with
  | Seeds l -> List.iter (fun s -> visit (Space.encode space s) s) l
  | All | Pred _ ->
      check_budget t (Space.size space);
      let p = match from with Pred p -> p | _ -> fun _ -> true in
      Space.iter space (fun id s -> if p s then visit id s)

let lazy_region t cp ~from ~target =
  let space = t.space in
  let actions = cp.Compile.actions in
  let n_actions = Array.length actions in
  let visited : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let node_keys = Vec.create () in
  let terminal_nodes = ref [] in
  let edges = ref [] in
  let queue = Queue.create () in
  let explored = ref 0 in
  let visit key s =
    if not (Hashtbl.mem visited key) then begin
      incr explored;
      check_budget t !explored;
      let node = if target s then -1 else Vec.push node_keys key in
      Hashtbl.add visited key node;
      Queue.add key queue
    end
  in
  seed_roots t ~from visit;
  let buf = State.make (Space.env space) in
  let post = State.make (Space.env space) in
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    Space.decode_into space key buf;
    let src_node = Hashtbl.find visited key in
    let out_degree = ref 0 in
    for a = 0 to n_actions - 1 do
      let ca = actions.(a) in
      if ca.Compile.enabled buf then begin
        incr out_degree;
        ca.Compile.apply_into buf post;
        let dst_key = Space.encode space post in
        visit dst_key post;
        if src_node >= 0 then begin
          let dst_node = Hashtbl.find visited dst_key in
          if dst_node >= 0 then edges := (src_node, dst_node, a) :: !edges
        end
      end
    done;
    if src_node >= 0 && !out_degree = 0 then
      terminal_nodes := src_node :: !terminal_nodes
  done;
  let node_key = Vec.to_array node_keys in
  let n_nodes = Array.length node_key in
  let terminal = Array.make n_nodes false in
  List.iter (fun v -> terminal.(v) <- true) !terminal_nodes;
  let graph = Dgraph.Digraph.of_edges n_nodes (List.rev !edges) in
  let node_of_key key =
    match Hashtbl.find_opt visited key with Some v -> v | None -> -1
  in
  { graph; node_key; terminal; explored = !explored; node_of_key }

let region t cp ~from ~target =
  match t.backend with
  | Eager -> eager_region t cp ~from ~target
  | Lazy -> lazy_region t cp ~from ~target

let state_of_node t region v = Space.decode t.space region.node_key.(v)

let iter_states t f =
  (match t.backend with
  | Eager -> ()
  | Lazy -> check_budget t (Space.size t.space));
  Space.iter t.space (fun _ s -> f s)

let iter_reachable t cp ~from f =
  match from with
  | All -> iter_states t f
  | Pred _ | Seeds _ ->
      let space = t.space in
      let actions = cp.Compile.actions in
      let visited : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
      let queue = Queue.create () in
      let explored = ref 0 in
      let visit key =
        if not (Hashtbl.mem visited key) then begin
          incr explored;
          check_budget t !explored;
          Hashtbl.add visited key ();
          Queue.add key queue
        end
      in
      seed_roots t ~from (fun key _ -> visit key);
      let buf = State.make (Space.env space) in
      let post = State.make (Space.env space) in
      while not (Queue.is_empty queue) do
        let key = Queue.pop queue in
        Space.decode_into space key buf;
        f buf;
        Array.iter
          (fun (ca : Compile.action) ->
            if ca.enabled buf then begin
              ca.apply_into buf post;
              visit (Space.encode space post)
            end)
          actions
      done

let ball env ~center ~radius =
  let vars = Env.vars env in
  let n = Array.length vars in
  let acc = ref [] in
  let s = State.copy center in
  let rec go i remaining =
    if i = n then acc := State.copy s :: !acc
    else begin
      go (i + 1) remaining;
      if remaining > 0 then begin
        let d = Var.domain vars.(i) in
        let low =
          match d with
          | Domain.Range { lo; _ } -> lo
          | Domain.Bool | Domain.Enum _ -> 0
        in
        let center_value = State.get_index s i in
        for v = low to low + Domain.size d - 1 do
          if v <> center_value then begin
            State.set_index s i v;
            go (i + 1) (remaining - 1)
          end
        done;
        State.set_index s i center_value
      end
    end
  in
  go 0 radius;
  List.rev !acc
