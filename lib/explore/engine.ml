module Env = Guarded.Env
module State = Guarded.State
module Var = Guarded.Var
module Domain = Guarded.Domain
module Compile = Guarded.Compile

type backend = Eager | Lazy | Parallel
type storage = Auto | Direct | Probed

type t = {
  backend : backend;
  space : Space.t;
  codec : Codec.t;
  budget : int;
  jobs : int;  (* worker-domain count for the parallel backend *)
  pool : Par.Pool.t option;
      (* a caller-owned shared pool (the serve daemon's); searches borrow
         it instead of spawning a transient pool per call *)
  packed : bool;  (* keys are bit-packed codes instead of dense ids *)
  direct : bool;  (* visited sets are direct-mapped over the dense range *)
  obs : Obs.Ctx.t;
  guard : Rt.Guard.t;  (* cooperative budget/cancellation polling point *)
  snapshots : bool;  (* build a resumable snapshot when interrupted *)
  salt : string;  (* caller context folded into config hashes *)
  mutable csr : (Compile.program * Tsys.t) option;
      (* Cache of the eager CSR build, keyed by physical equality of the
         compiled program: repeated queries against the same program (the
         common case: check_unfair then check_fair) build it once. *)
  mutable last_visited_bytes : int;
  mutable last_frontier_bytes : int;
}

exception Region_overflow of int

type interrupt = {
  reason : Rt.Cancel.reason;
  states_seen : int;
  frontier_size : int;
  snapshot : Rt.Snapshot.t option;
}

exception Interrupted of interrupt

type roots =
  | All
  | Pred of (Guarded.State.t -> bool)
  | Seeds of Guarded.State.t list

type region = {
  graph : int Dgraph.Digraph.t;
  node_key : int array;
  terminal : bool array;
  explored : int;
  node_of_key : int -> int;
}

(* Direct-mapped visited tables pay 4 bytes per state of the whole dense
   range up front, so they must both be materializable and not dwarf the
   states the budget lets the search touch. *)
let direct_auto_cap = 1 lsl 28
let direct_hard_cap = 1 lsl 30

let create ?(backend = Eager) ?(max_states = 2_000_000) ?jobs ?pool
    ?(storage = Auto) ?(packed_keys = false) ?(obs = Obs.Ctx.disabled)
    ?(guard = Rt.Guard.inert) ?(snapshots = false) ?(salt = "") env =
  let jobs =
    match (jobs, pool) with
    | Some j, _ when j > 0 -> j
    | Some j, _ -> invalid_arg (Printf.sprintf "Engine.create: jobs must be positive (got %d)" j)
    | None, Some p -> Par.Pool.jobs p
    | None, None -> Par.Pool.default_jobs ()
  in
  match backend with
  | Eager ->
      if packed_keys then
        invalid_arg "Engine.create: packed keys need the lazy or parallel backend";
      let space = Space.create ~max_states env in
      { backend; space; codec = Space.codec space; budget = Space.size space;
        jobs; pool; packed = false; direct = false; obs; guard; snapshots;
        salt; csr = None; last_visited_bytes = 0; last_frontier_bytes = 0 }
  | Lazy | Parallel ->
      let space = Space.create_unbounded env in
      let codec = Space.codec space in
      if packed_keys then Codec.require_packed codec;
      let direct =
        match storage with
        | Probed -> false
        | Direct ->
            if packed_keys then
              invalid_arg "Engine.create: direct storage needs dense keys";
            if Space.size space > direct_hard_cap then
              invalid_arg
                (Printf.sprintf
                   "Engine.create: direct storage needs a dense range of at \
                    most 2^30 slots (space has %d)"
                   (Space.size space));
            true
        | Auto ->
            (not packed_keys)
            && Space.size space <= direct_auto_cap
            && Space.size space / 8 <= max_states
      in
      { backend; space; codec; budget = max_states; jobs; pool;
        packed = packed_keys; direct; obs; guard; snapshots; salt; csr = None;
        last_visited_bytes = 0; last_frontier_bytes = 0 }

let of_space ?(obs = Obs.Ctx.disabled) space =
  { backend = Eager; space; codec = Space.codec space;
    budget = Space.size space; jobs = 1; pool = None; packed = false;
    direct = false; obs; guard = Rt.Guard.inert; snapshots = false; salt = "";
    csr = None; last_visited_bytes = 0; last_frontier_bytes = 0 }

let backend t = t.backend

let backend_name t =
  match t.backend with Eager -> "eager" | Lazy -> "lazy" | Parallel -> "parallel"

let space t = t.space
let codec t = t.codec
let env t = Space.env t.space
let max_states t = t.budget
let jobs t = t.jobs
let pool t = t.pool
let obs t = t.obs
let guard t = t.guard
let wants_snapshots t = t.snapshots
let packed_keys t = t.packed

let storage_name t =
  match t.backend with
  | Eager -> "csr"
  | Lazy | Parallel -> if t.direct then "direct" else "probed"

let storage_bytes t = t.last_visited_bytes + t.last_frontier_bytes

(* --- state keys: how node_key / node_of_key values read --- *)

let encode_key t s =
  if t.packed then Codec.encode_packed t.codec s else Space.encode t.space s

let decode_key_into t key s =
  if t.packed then Codec.decode_packed_into t.codec key s
  else Space.decode_into t.space key s

let decode_key t key =
  let s = State.make (env t) in
  decode_key_into t key s;
  s

let make_visited t =
  let direct =
    match t.backend with
    (* eager engines only need a Flatset for layered searches
       (Faultspan); their space is already bounded, so direct-map it
       whenever the range is materializable *)
    | Eager -> Space.size t.space <= direct_auto_cap
    | Lazy | Parallel -> t.direct
  in
  if direct then Flatset.direct ~size:(Space.size t.space)
  else Flatset.probed ()

let tsys t cp =
  match t.csr with
  | Some (cp', tsys) when cp' == cp -> tsys
  | _ ->
      let tsys = Tsys.build ~guard:t.guard cp t.space in
      t.csr <- Some (cp, tsys);
      tsys

(* Growable int array for node keys discovered in order. *)
module Vec = Par.Ivec

(* --- configuration fingerprints for checkpoint files ---

   A snapshot written under one engine configuration must not silently
   resume under another: node numbering depends on the codec layout and
   the key representation, the overflow point on the budget, and the
   explored set on the model itself. The hash folds the engine-shape
   parameters with caller-supplied [parts] (action names, and via [salt]
   the CLI's whole instance/flag spelling). Backend and job count are
   deliberately excluded — resuming lazy checkpoints on the parallel
   backend (and vice versa, at any job count) is part of the
   determinism contract. *)

let config_hash t ~parts =
  let b = Buffer.create 160 in
  Buffer.add_string b t.salt;
  Buffer.add_string b (Format.asprintf "|layout=%a" Codec.pp_layout t.codec);
  Buffer.add_string b
    (Printf.sprintf "|packed=%b|budget=%d" t.packed t.budget);
  List.iter
    (fun p ->
      Buffer.add_char b '|';
      Buffer.add_string b p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let action_names (cp : Compile.program) =
  Array.to_list
    (Array.map
       (fun (ca : Compile.action) -> Guarded.Action.name ca.Compile.source)
       cp.Compile.actions)

(* --- region snapshots ---

   The resumable wavefront of a region search is: member keys in node
   order, non-member keys in discovery order (together they rebuild the
   visited table and the explored count), committed terminals and edges,
   and the pending frontier in FIFO order. The lazy queue at any pop
   boundary and the parallel next-wave at any wave boundary are the same
   FIFO — the E16 equivalence argument applies to any starting queue —
   so one snapshot format resumes on either backend at any job count.
   Edges are bit-packed (src, dst, action) into one word when the widths
   fit, which keeps a 10^7-state checkpoint in the hundreds of MB. *)

let kind_region = "region"

let region_hash t cp = config_hash t ~parts:(kind_region :: action_names cp)

let bits_for n =
  let rec go b = if n <= 1 lsl b then b else go (b + 1) in
  go 1

let build_region_snapshot t cp ~explored ~node_keys ~nonmembers ~terminals
    ~edges ~frontier =
  let n_members = Vec.len node_keys in
  let n_actions = Array.length cp.Compile.actions in
  let n_edges = Vec.len edges / 3 in
  let node_bits = bits_for n_members and act_bits = bits_for n_actions in
  let packed = (2 * node_bits) + act_bits <= 62 in
  let edges_arr =
    if packed then
      Array.init n_edges (fun j ->
          let s = Vec.get edges (3 * j)
          and d = Vec.get edges ((3 * j) + 1)
          and a = Vec.get edges ((3 * j) + 2) in
          (((s lsl node_bits) lor d) lsl act_bits) lor a)
    else Vec.to_array edges
  in
  {
    Rt.Snapshot.kind = kind_region;
    config_hash = region_hash t cp;
    meta =
      [
        ("explored", explored);
        ("n_edges", n_edges);
        ("edges_packed", (if packed then 1 else 0));
        ("node_bits", node_bits);
        ("act_bits", act_bits);
      ];
    sections =
      [
        ("members", Vec.to_array node_keys);
        ("nonmembers", Vec.to_array nonmembers);
        ("terminals", Vec.to_array terminals);
        ("frontier", frontier);
        ("edges", edges_arr);
      ];
  }

let check_snapshot_kind ~kind ~hash (snap : Rt.Snapshot.t) =
  if snap.Rt.Snapshot.kind <> kind then
    raise
      (Rt.Snapshot.Corrupt
         (Printf.sprintf
            "snapshot kind %S where %S was expected (written by a different \
             subcommand?)"
            snap.Rt.Snapshot.kind kind));
  if snap.Rt.Snapshot.config_hash <> hash then
    raise
      (Rt.Snapshot.Corrupt
         "config-hash mismatch: this checkpoint was written under a \
          different model or engine configuration")

(* Rebuild search state from a snapshot. [add] binds key -> node in
   whichever visited representation the resuming backend uses; the
   pending frontier is returned for the backend to re-queue. *)
let restore_region t cp snap ~add ~node_keys ~nonmembers ~terminals ~edges =
  check_snapshot_kind ~kind:kind_region ~hash:(region_hash t cp) snap;
  let members = Rt.Snapshot.section snap "members" in
  let nonm = Rt.Snapshot.section snap "nonmembers" in
  let terms = Rt.Snapshot.section snap "terminals" in
  let frontier = Rt.Snapshot.section snap "frontier" in
  let edges_arr = Rt.Snapshot.section snap "edges" in
  let explored = Rt.Snapshot.meta_int snap "explored" in
  if explored <> Array.length members + Array.length nonm then
    raise (Rt.Snapshot.Corrupt "inconsistent explored count");
  Array.iteri
    (fun i key ->
      ignore (Vec.push node_keys key);
      add key i)
    members;
  Array.iter
    (fun key ->
      ignore (Vec.push nonmembers key);
      add key (-1))
    nonm;
  Array.iter (fun v -> ignore (Vec.push terminals v)) terms;
  let n_edges = Rt.Snapshot.meta_int snap "n_edges" in
  if Rt.Snapshot.meta_int snap "edges_packed" = 1 then begin
    let node_bits = Rt.Snapshot.meta_int snap "node_bits" in
    let act_bits = Rt.Snapshot.meta_int snap "act_bits" in
    if node_bits < 1 || act_bits < 1 || (2 * node_bits) + act_bits > 62 then
      raise (Rt.Snapshot.Corrupt "implausible edge packing");
    let nmask = (1 lsl node_bits) - 1 and amask = (1 lsl act_bits) - 1 in
    Array.iter
      (fun w ->
        ignore (Vec.push edges ((w lsr (act_bits + node_bits)) land nmask));
        ignore (Vec.push edges ((w lsr act_bits) land nmask));
        ignore (Vec.push edges (w land amask)))
      edges_arr
  end
  else Array.iter (fun v -> ignore (Vec.push edges v)) edges_arr;
  if Vec.len edges <> 3 * n_edges then
    raise (Rt.Snapshot.Corrupt "inconsistent edge count");
  (explored, frontier)

(* --- eager backend: answer from the materialized CSR relation --- *)

let eager_region t cp ~from ~target =
  let space = t.space in
  let ts = tsys t cp in
  let n = Space.size space in
  let reach =
    match from with
    | All -> None (* every state is a root: reachability is the whole space *)
    | Pred p -> Some (Tsys.reachable ts (Space.satisfying space p))
    | Seeds l -> Some (Tsys.reachable ts (List.map (Space.encode space) l))
  in
  let member = Bitset.create n in
  let buf = State.make (Space.env space) in
  let consider id =
    Space.decode_into space id buf;
    if not (target buf) then Bitset.add member id
  in
  (match reach with
  | None -> for id = 0 to n - 1 do consider id done
  | Some r -> Bitset.iter r consider);
  let graph, node_to_state, state_to_node =
    Tsys.region_graph_full ts ~member:(Bitset.mem member)
  in
  {
    graph;
    node_key = node_to_state;
    terminal = Array.map (Tsys.is_terminal ts) node_to_state;
    explored = (match reach with None -> n | Some r -> Bitset.cardinal r);
    node_of_key = state_to_node;
  }

(* --- lazy backend: BFS generating successors on demand --- *)

let check_budget t visited =
  if visited > t.budget then raise (Region_overflow visited)

(* Seed the search with the root states. [visit] classifies a state on
   first sight (assigning it a member node id when the target fails) and
   enqueues it. [All]/[Pred] need a sweep, so they require the space to
   fit the budget; [Seeds] does not. Sweeps run in dense id order — the
   canonical root order — whatever the key representation; under packed
   keys the id is re-encoded from the state buffer. *)
let seed_roots t ~from visit =
  let space = t.space in
  match from with
  | Seeds l -> List.iter (fun s -> visit (encode_key t s) s) l
  | All | Pred _ ->
      check_budget t (Space.size space);
      let p = match from with Pred p -> p | _ -> fun _ -> true in
      if t.packed then
        Space.iter space (fun _ s ->
            if p s then visit (Codec.encode_packed t.codec s) s)
      else Space.iter space (fun id s -> if p s then visit id s)

let finish_region t ~visited_bytes ~frontier_bytes ~node_keys ~nonmembers:_
    ~terminals ~edges ~explored ~node_of_key =
  t.last_visited_bytes <- visited_bytes;
  t.last_frontier_bytes <- frontier_bytes;
  let node_key = Vec.to_array node_keys in
  let n_nodes = Array.length node_key in
  let terminal = Array.make n_nodes false in
  for i = 0 to Vec.len terminals - 1 do
    terminal.(Vec.get terminals i) <- true
  done;
  let n_edges = Vec.len edges / 3 in
  let graph =
    Dgraph.Digraph.of_edges_f n_nodes ~n_edges (fun j ->
        (Vec.get edges (3 * j), Vec.get edges ((3 * j) + 1),
         Vec.get edges ((3 * j) + 2)))
  in
  { graph; node_key; terminal; explored; node_of_key }

let lazy_region t cp ~from ~target ~resume =
  let actions = cp.Compile.actions in
  let n_actions = Array.length actions in
  let visited = make_visited t in
  let node_keys = Vec.create () in
  let nonmembers = Vec.create () in
  let terminals = Vec.create () in
  let edges = Vec.create () in
  let queue = Flatqueue.create () in
  let explored = ref 0 in
  let visit key s =
    if not (Flatset.mem visited key) then begin
      incr explored;
      check_budget t !explored;
      let node =
        if target s then begin
          ignore (Vec.push nonmembers key);
          -1
        end
        else Vec.push node_keys key
      in
      Flatset.add visited key node;
      Flatqueue.push queue key
    end
  in
  (match resume with
  | Some snap ->
      let ex, frontier =
        restore_region t cp snap ~add:(Flatset.add visited) ~node_keys
          ~nonmembers ~terminals ~edges
      in
      explored := ex;
      Array.iter (fun key -> Flatqueue.push queue key) frontier
  | None -> seed_roots t ~from visit);
  let buf = State.make (env t) in
  let post = State.make (env t) in
  let pops = ref 0 in
  let guard_on = Rt.Guard.active t.guard in
  while not (Flatqueue.is_empty queue) do
    (* cancellation points at chunk granularity, never per state *)
    if guard_on && !pops land 1023 = 0 then begin
      match
        Rt.Guard.poll t.guard ~states:!explored
          ~bytes:(Flatset.bytes visited + Flatqueue.bytes queue)
      with
      | None -> ()
      | Some reason ->
          t.last_visited_bytes <- Flatset.bytes visited;
          t.last_frontier_bytes <- Flatqueue.peak_bytes queue;
          let frontier_size = Flatqueue.length queue in
          let snapshot =
            if not t.snapshots then None
            else begin
              let fr = Array.make frontier_size 0 in
              let i = ref 0 in
              Flatqueue.iter queue (fun k ->
                  fr.(!i) <- k;
                  incr i);
              Some
                (build_region_snapshot t cp ~explored:!explored ~node_keys
                   ~nonmembers ~terminals ~edges ~frontier:fr)
            end
          in
          raise
            (Interrupted
               { reason; states_seen = !explored; frontier_size; snapshot })
    end;
    let key = Flatqueue.pop queue in
    incr pops;
    (* progress checkpoints at chunk granularity, never per state *)
    if Obs.Ctx.enabled t.obs && !pops land 8191 = 0 then
      Obs.Ctx.tick t.obs ~label:"engine.lazy" ~states:!explored
        ~frontier:(Flatqueue.length queue) ();
    decode_key_into t key buf;
    let src_node = Flatset.find_def visited key (-2) in
    let out_degree = ref 0 in
    for a = 0 to n_actions - 1 do
      let ca = actions.(a) in
      if ca.Compile.enabled buf then begin
        incr out_degree;
        ca.Compile.apply_into buf post;
        let dst_key = encode_key t post in
        visit dst_key post;
        if src_node >= 0 then begin
          let dst_node = Flatset.find_def visited dst_key (-2) in
          if dst_node >= 0 then begin
            ignore (Vec.push edges src_node);
            ignore (Vec.push edges dst_node);
            ignore (Vec.push edges a)
          end
        end
      end
    done;
    if src_node >= 0 && !out_degree = 0 then ignore (Vec.push terminals src_node)
  done;
  finish_region t ~visited_bytes:(Flatset.bytes visited)
    ~frontier_bytes:(Flatqueue.peak_bytes queue) ~node_keys ~nonmembers
    ~terminals ~edges ~explored:!explored
    ~node_of_key:(fun key -> Flatset.find_def visited key (-1))

(* --- parallel backend: level-synchronized BFS over a domain pool ---

   Each level runs in two phases. Phase A (parallel): every frontier
   state is expanded on some worker — decode, evaluate every guard,
   apply, encode — against per-worker compiled actions and reusable
   state buffers (the compiled closures carry private scratch, so they
   must not be shared across domains); each successor is annotated with
   a probe of the sharded visited set. Phase B (sequential, cheap):
   successors are committed in frontier order × action order, which is
   exactly the FIFO order of the lazy backend's single queue — so node
   numbering, edge order, the explored count, and the overflow point are
   all bit-identical to [lazy_region] at any job count. The storage
   representation (flat shards, dense or packed keys) never affects the
   commit order, so the determinism contract survives it. *)

(* Phase-A successor tags:
   >= -1 : already-visited key carrying its node id (-1 = non-member);
   -2    : unseen at probe time, target fails (member when committed);
   -3    : unseen at probe time, target holds (non-member). *)

let parallel_region t cp ~from ~target ~resume =
  let space = t.space in
  let env = Space.env space in
  let n_actions = Array.length cp.Compile.actions in
  Par.Pool.use ?pool:t.pool ~jobs:t.jobs @@ fun pool ->
  let jobs = Par.Pool.jobs pool in
  let worker_actions =
    Array.init jobs (fun w ->
        if w = 0 then cp.Compile.actions
        else (Compile.program cp.Compile.source).Compile.actions)
  in
  let worker_buf = Array.init jobs (fun _ -> State.make env) in
  let worker_post = Array.init jobs (fun _ -> State.make env) in
  let worker_out = Array.init jobs (fun _ -> Vec.create ()) in
  let visited = Par.Shardmap.create () in
  let node_keys = Vec.create () in
  let nonmembers = Vec.create () in
  let terminals = Vec.create () in
  let edges = Vec.create () in
  let explored = ref 0 in
  let frontier_peak = ref 0 in
  let cur_keys = Vec.create () and cur_nodes = Vec.create () in
  let next_keys = Vec.create () and next_nodes = Vec.create () in
  let frontier_bytes () =
    Vec.bytes cur_keys + Vec.bytes cur_nodes + Vec.bytes next_keys
    + Vec.bytes next_nodes
  in
  (* First sighting of [key], known absent from [visited]: mirrors the
     lazy backend's [visit] exactly (count, budget check, numbering). *)
  let visit_new key ~member =
    incr explored;
    check_budget t !explored;
    let node =
      if member then Vec.push node_keys key
      else begin
        ignore (Vec.push nonmembers key);
        -1
      end
    in
    Par.Shardmap.add visited key node;
    ignore (Vec.push next_keys key);
    ignore (Vec.push next_nodes node);
    node
  in
  (match resume with
  | Some snap ->
      let ex, frontier =
        restore_region t cp snap ~add:(Par.Shardmap.add visited) ~node_keys
          ~nonmembers ~terminals ~edges
      in
      explored := ex;
      Array.iter
        (fun key ->
          let node = Par.Shardmap.find_def visited key min_int in
          if node = min_int then
            raise (Rt.Snapshot.Corrupt "frontier key missing from visited set");
          ignore (Vec.push next_keys key);
          ignore (Vec.push next_nodes node))
        frontier
  | None ->
      (match from with
      | Seeds l ->
          List.iter
            (fun s ->
              let key = encode_key t s in
              if not (Par.Shardmap.mem visited key) then
                ignore (visit_new key ~member:(not (target s))))
            l
      | All | Pred _ ->
          let n = Space.size space in
          check_budget t n;
          let p = match from with Pred p -> p | _ -> fun _ -> true in
          (* classify every id in parallel, then commit in id order; under
             packed keys phase A also records each qualifying id's key, so
             the sequential commit needs no re-decode *)
          let classes = Bytes.make n '\000' in
          let packed_key = if t.packed then Array.make n 0 else [||] in
          Par.Pool.parallel_for pool ~n (fun ~worker lo hi ->
              let buf = worker_buf.(worker) in
              for id = lo to hi - 1 do
                Space.decode_into space id buf;
                if p buf then begin
                  Bytes.unsafe_set classes id
                    (if target buf then '\002' else '\001');
                  if t.packed then
                    packed_key.(id) <- Codec.encode_packed t.codec buf
                end
              done);
          for id = 0 to n - 1 do
            match Bytes.unsafe_get classes id with
            | '\000' -> ()
            | c ->
                let key = if t.packed then packed_key.(id) else id in
                ignore (visit_new key ~member:(c = '\001'))
          done);
      if Obs.Ctx.enabled t.obs then
        Obs.Ctx.emit t.obs "engine.roots"
          [ ("discovered", Obs.Sink.I !explored) ]);
  let guard_on = Rt.Guard.active t.guard in
  let level = ref 0 in
  while Vec.len next_keys > 0 do
    (* cancellation point at the wave boundary: the pending next wave is
       exactly the lazy queue's remaining FIFO, so the snapshot format is
       shared with the lazy backend *)
    (if guard_on then
       match
         Rt.Guard.poll t.guard ~states:!explored
           ~bytes:(Par.Shardmap.bytes visited + frontier_bytes ())
       with
       | None -> ()
       | Some reason ->
           t.last_visited_bytes <- Par.Shardmap.bytes visited;
           t.last_frontier_bytes <- max !frontier_peak (frontier_bytes ());
           let frontier_size = Vec.len next_keys in
           let snapshot =
             if not t.snapshots then None
             else
               Some
                 (build_region_snapshot t cp ~explored:!explored ~node_keys
                    ~nonmembers ~terminals ~edges
                    ~frontier:(Vec.to_array next_keys))
           in
           raise
             (Interrupted
                { reason; states_seen = !explored; frontier_size; snapshot }));
    Vec.swap cur_keys next_keys;
    Vec.swap cur_nodes next_nodes;
    Vec.clear next_keys;
    Vec.clear next_nodes;
    let len = Vec.len cur_keys in
    let explored_before = !explored in
    let succs = Array.make len [||] in
    Par.Pool.parallel_for pool ~n:len (fun ~worker lo hi ->
        let acts = worker_actions.(worker) in
        let buf = worker_buf.(worker) and post = worker_post.(worker) in
        let out = worker_out.(worker) in
        for i = lo to hi - 1 do
          decode_key_into t (Vec.get cur_keys i) buf;
          Vec.clear out;
          for a = 0 to n_actions - 1 do
            let ca = acts.(a) in
            if ca.Compile.enabled buf then begin
              ca.Compile.apply_into buf post;
              let dst_key = encode_key t post in
              let tag =
                let v = Par.Shardmap.find_def visited dst_key min_int in
                if v <> min_int then v
                else if target post then -3
                else -2
              in
              ignore (Vec.push out a);
              ignore (Vec.push out dst_key);
              ignore (Vec.push out tag)
            end
          done;
          succs.(i) <- Vec.to_array out
        done);
    for i = 0 to len - 1 do
      let src_node = Vec.get cur_nodes i in
      let sc = succs.(i) in
      let m = Array.length sc / 3 in
      for j = 0 to m - 1 do
        let a = sc.(3 * j) in
        let dst_key = sc.((3 * j) + 1) in
        let tag = sc.((3 * j) + 2) in
        let dst_node =
          if tag >= -1 then tag
          else
            (* the same key may already have been committed earlier in
               this merge; only a miss here is a genuine first sighting *)
            let v = Par.Shardmap.find_def visited dst_key min_int in
            if v <> min_int then v
            else visit_new dst_key ~member:(tag = -2)
        in
        if src_node >= 0 && dst_node >= 0 then begin
          ignore (Vec.push edges src_node);
          ignore (Vec.push edges dst_node);
          ignore (Vec.push edges a)
        end
      done;
      if src_node >= 0 && m = 0 then ignore (Vec.push terminals src_node)
    done;
    let fb = frontier_bytes () in
    if fb > !frontier_peak then frontier_peak := fb;
    if Obs.Ctx.enabled t.obs then begin
      Obs.Metrics.incr (Obs.Ctx.counter t.obs "engine.waves");
      Obs.Ctx.emit t.obs "engine.wave"
        [
          ("level", Obs.Sink.I !level);
          ("frontier", Obs.Sink.I len);
          ("discovered", Obs.Sink.I (!explored - explored_before));
        ];
      Obs.Ctx.tick t.obs ~label:"engine.parallel" ~states:!explored
        ~frontier:(Vec.len next_keys) ~depth:!level ()
    end;
    incr level
  done;
  finish_region t ~visited_bytes:(Par.Shardmap.bytes visited)
    ~frontier_bytes:!frontier_peak ~node_keys ~nonmembers ~terminals ~edges
    ~explored:!explored
    ~node_of_key:(fun key -> Par.Shardmap.find_def visited key (-1))

let dispatch_region t cp ~from ~target ~resume =
  match t.backend with
  | Eager -> (
      (match resume with
      | Some _ ->
          raise
            (Rt.Snapshot.Corrupt
               "the eager backend cannot resume checkpoints (use the lazy \
                or parallel backend)")
      | None -> ());
      try eager_region t cp ~from ~target
      with Rt.Cancel.Cancelled reason ->
        (* the CSR build has no resumable wavefront; the partial relation
           is discarded *)
        raise
          (Interrupted
             { reason; states_seen = 0; frontier_size = 0; snapshot = None }))
  | Lazy -> lazy_region t cp ~from ~target ~resume
  | Parallel -> parallel_region t cp ~from ~target ~resume

(* Every backend funnels through here, so the reconciliation invariant
   holds uniformly: the [engine.states_discovered] counter equals the sum
   of the [explored] fields over all [engine.region] events. *)
let region ?resume t cp ~from ~target =
  if not (Obs.Ctx.enabled t.obs) then dispatch_region t cp ~from ~target ~resume
  else begin
    let r =
      Obs.Ctx.time t.obs "engine.region" (fun () ->
          dispatch_region t cp ~from ~target ~resume)
    in
    let nodes = Array.length r.node_key in
    let edges = Dgraph.Digraph.edge_count r.graph in
    Obs.Metrics.incr (Obs.Ctx.counter t.obs "engine.regions");
    Obs.Metrics.add (Obs.Ctx.counter t.obs "engine.states_discovered")
      r.explored;
    Obs.Metrics.add (Obs.Ctx.counter t.obs "engine.region_nodes") nodes;
    Obs.Metrics.add (Obs.Ctx.counter t.obs "engine.region_edges") edges;
    (* storage gauges are set post-hoc from totals, so they are as
       job-count-invariant as the search itself *)
    if t.last_visited_bytes > 0 then begin
      Obs.Metrics.set_max
        (Obs.Ctx.gauge t.obs "engine.visited_bytes")
        t.last_visited_bytes;
      Obs.Metrics.set_max
        (Obs.Ctx.gauge t.obs "engine.frontier_peak_bytes")
        t.last_frontier_bytes
    end;
    Obs.Ctx.emit t.obs "engine.region"
      [
        ("backend", Obs.Sink.S (backend_name t));
        ("explored", Obs.Sink.I r.explored);
        ("nodes", Obs.Sink.I nodes);
        ("edges", Obs.Sink.I edges);
      ];
    Obs.Ctx.finish_progress t.obs
      ~label:("engine." ^ backend_name t)
      ~states:r.explored;
    r
  end

let state_of_node t region v = decode_key t region.node_key.(v)

let iter_states t f =
  (match t.backend with
  | Eager -> ()
  | Lazy | Parallel -> check_budget t (Space.size t.space));
  Space.iter t.space (fun _ s -> f s)

let iter_reachable t cp ~from f =
  match from with
  | All -> iter_states t f
  | Pred _ | Seeds _ ->
      let actions = cp.Compile.actions in
      let visited = make_visited t in
      let queue = Flatqueue.create () in
      let explored = ref 0 in
      let visit key =
        if not (Flatset.mem visited key) then begin
          incr explored;
          check_budget t !explored;
          Flatset.add visited key 0;
          Flatqueue.push queue key
        end
      in
      seed_roots t ~from (fun key _ -> visit key);
      let buf = State.make (env t) in
      let post = State.make (env t) in
      let guard_on = Rt.Guard.active t.guard in
      let pops = ref 0 in
      while not (Flatqueue.is_empty queue) do
        (if guard_on && !pops land 1023 = 0 then
           match
             Rt.Guard.poll t.guard ~states:!explored
               ~bytes:(Flatset.bytes visited + Flatqueue.bytes queue)
           with
           | None -> ()
           | Some reason ->
               raise
                 (Interrupted
                    {
                      reason;
                      states_seen = !explored;
                      frontier_size = Flatqueue.length queue;
                      snapshot = None;
                    }));
        let key = Flatqueue.pop queue in
        incr pops;
        decode_key_into t key buf;
        f buf;
        Array.iter
          (fun (ca : Compile.action) ->
            if ca.enabled buf then begin
              ca.apply_into buf post;
              visit (encode_key t post)
            end)
          actions
      done;
      t.last_visited_bytes <- Flatset.bytes visited;
      t.last_frontier_bytes <- Flatqueue.peak_bytes queue

let ball env ~center ~radius =
  let vars = Env.vars env in
  let n = Array.length vars in
  let acc = ref [] in
  let s = State.copy center in
  let rec go i remaining =
    if i = n then acc := State.copy s :: !acc
    else begin
      go (i + 1) remaining;
      if remaining > 0 then begin
        let d = Var.domain vars.(i) in
        let low =
          match d with
          | Domain.Range { lo; _ } -> lo
          | Domain.Bool | Domain.Enum _ -> 0
        in
        let center_value = State.get_index s i in
        for v = low to low + Domain.size d - 1 do
          if v <> center_value then begin
            State.set_index s i v;
            go (i + 1) (remaining - 1)
          end
        done;
        State.set_index s i center_value
      end
    end
  in
  go 0 radius;
  List.rev !acc
