(** Visited tables for the exploration engines, in flat storage.

    A Flatset maps non-negative state keys to small int values (node
    ids, BFS depths) in one of two representations, chosen from the
    space's shape:

    - {b Direct}: a [Bigarray] of int32 indexed by the {e dense} state
      code — 4 bytes per state of the whole space, O(1) exact lookup,
      no hashing, no growth. The right choice when the dense code range
      is materializable and the search expects to visit a sizable
      fraction of it (the engine's auto rule: range ≤ 2^28 slots and
      ≤ 8× the exploration budget). Values must fit an int32; absent
      entries read as the caller's default.

    - {b Probed}: an open-addressing {!Par.Flattbl} keyed by any
      non-negative code (dense or bit-packed) — ~16/load bytes per
      {e visited} state, growing by doubling. The choice for sparse
      exploration of huge spaces.

    Both are allocation-free on the probe path and both answer
    {!bytes}, so engines report bytes/state uniformly. Not
    thread-safe; the parallel backend shards {!Par.Shardmap} instead. *)

type t

val direct : size:int -> t
(** Direct-mapped table over dense codes [0 .. size-1]. Allocates
    [4 * size] bytes up front. @raise Invalid_argument when [size] is
    negative or exceeds [2^30] slots. *)

val probed : ?capacity:int -> unit -> t
(** Open-addressing table; [capacity] as in {!Par.Flattbl.create}. *)

val kind : t -> [ `Direct | `Probed ]
val mem : t -> int -> bool

val find_def : t -> int -> int -> int
(** [find_def t key default] — allocation-free lookup. *)

val add : t -> int -> int -> unit
(** Bind the key, replacing any previous binding. Direct tables
    @raise Invalid_argument when the value needs more than 31 bits or
    the key is out of range. *)

val remove : t -> int -> unit
val length : t -> int

val iter : t -> (int -> int -> unit) -> unit
(** Visit every binding: direct tables in key order, probed tables in
    storage order. *)

val bytes : t -> int
(** Heap footprint of the backing storage. *)
