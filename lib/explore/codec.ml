module Env = Guarded.Env
module State = Guarded.State
module Var = Guarded.Var
module Domain = Guarded.Domain

type t = {
  env : Env.t;
  bases : int array;  (** domain size per slot *)
  lows : int array;  (** smallest legal value per slot *)
  weights : int array;  (** dense mixed-radix place values (garbage past 62 bits) *)
  bits : int array;  (** packed field width per slot *)
  shifts : int array;  (** packed field offset per slot *)
  wide_word : int array;  (** two-word layout: word (0/1) per slot *)
  wide_shift : int array;  (** two-word layout: offset within the word *)
  wide_fits : bool;
  states : float;
  dense_bits : int;
  packed_bits : int;
}

exception Overflow of { layout : string; bits : int; states : float }

(* Keep the float comparison semantics Space.create has always used: a
   space is dense-encodable iff its float state count does not exceed
   2^60. encodable_max itself lives in Space; duplicating the constant
   here would invite drift, but Space is built on Codec, so the constant
   must live on this side. *)
let dense_max = 1 lsl 60

let bits_for base =
  (* ceil(log2 base); 0 for single-value domains *)
  let rec go b acc = if b <= 1 then acc else go ((b + 1) / 2) (acc + 1) in
  go base 0

let of_env env =
  let vars = Env.vars env in
  let n = Array.length vars in
  let bases = Array.map (fun v -> Domain.size (Var.domain v)) vars in
  let lows =
    Array.map
      (fun v ->
        match Var.domain v with
        | Domain.Range { lo; _ } -> lo
        | Domain.Bool | Domain.Enum _ -> 0)
      vars
  in
  let weights = Array.make n 1 in
  let states = Env.state_space_size env in
  let dense_ok = states <= float_of_int dense_max in
  if dense_ok then
    for i = 1 to n - 1 do
      weights.(i) <- weights.(i - 1) * bases.(i - 1)
    done;
  let bits = Array.map bits_for bases in
  let shifts = Array.make n 0 in
  for i = 1 to n - 1 do
    shifts.(i) <- shifts.(i - 1) + bits.(i - 1)
  done;
  let packed_bits = if n = 0 then 0 else shifts.(n - 1) + bits.(n - 1) in
  (* Two-word layout: fields are assigned to word 0 until the next one
     would cross bit 62, then continue from bit 0 of word 1 — fields
     never straddle the word boundary, so encode/decode stay one shift
     per slot. The alignment waste is under one field's width. *)
  let wide_word = Array.make n 0 in
  let wide_shift = Array.make n 0 in
  let word = ref 0 and off = ref 0 in
  let wide_fits = ref true in
  for i = 0 to n - 1 do
    if !off + bits.(i) > 62 then
      if !word = 0 then begin
        word := 1;
        off := 0
      end
      else wide_fits := false;
    wide_word.(i) <- !word;
    wide_shift.(i) <- !off;
    off := !off + bits.(i)
  done;
  if !off > 62 then wide_fits := false;
  let dense_bits =
    if dense_ok then bits_for (int_of_float states)
    else
      (* over the int range: report the packed width as an upper bound,
         floored at 61 so dense_ok and dense_bits never disagree *)
      max 61 (min 126 packed_bits)
  in
  {
    env;
    bases;
    lows;
    weights;
    bits;
    shifts;
    wide_word;
    wide_shift;
    wide_fits = !wide_fits;
    states;
    dense_bits;
    packed_bits;
  }

let env t = t.env
let states t = t.states
let slots t = Array.length t.bases
let dense_bits t = t.dense_bits
let packed_bits t = t.packed_bits
let dense_ok t = t.states <= float_of_int dense_max
let packed_ok t = t.packed_bits <= 62
let wide_ok t = t.wide_fits

let require layout ok bits t =
  if not ok then raise (Overflow { layout; bits; states = t.states })

let require_dense t = require "dense" (dense_ok t) t.dense_bits t
let require_packed t = require "packed" (packed_ok t) t.packed_bits t
let require_wide t = require "wide" (wide_ok t) t.packed_bits t

let dense_size t =
  require_dense t;
  int_of_float t.states

let[@inline] digit t s i =
  let d = State.get_index s i - t.lows.(i) in
  if d < 0 || d >= t.bases.(i) then
    invalid_arg "Codec.encode: state outside domains";
  d

let encode_dense t s =
  let acc = ref 0 in
  for i = 0 to Array.length t.bases - 1 do
    acc := !acc + (digit t s i * t.weights.(i))
  done;
  !acc

let decode_dense_into t code s =
  let rem = ref code in
  for i = 0 to Array.length t.bases - 1 do
    State.set_index s i ((!rem mod t.bases.(i)) + t.lows.(i));
    rem := !rem / t.bases.(i)
  done

let encode_packed t s =
  let acc = ref 0 in
  for i = 0 to Array.length t.bases - 1 do
    acc := !acc lor (digit t s i lsl t.shifts.(i))
  done;
  !acc

let decode_packed_into t code s =
  for i = 0 to Array.length t.bases - 1 do
    let d = (code lsr t.shifts.(i)) land ((1 lsl t.bits.(i)) - 1) in
    State.set_index s i (d + t.lows.(i))
  done

let encode_wide t s =
  require_wide t;
  let lo = ref 0 and hi = ref 0 in
  for i = 0 to Array.length t.bases - 1 do
    let d = digit t s i lsl t.wide_shift.(i) in
    if t.wide_word.(i) = 0 then lo := !lo lor d else hi := !hi lor d
  done;
  (!lo, !hi)

let decode_wide_into t (lo, hi) s =
  for i = 0 to Array.length t.bases - 1 do
    let word = if t.wide_word.(i) = 0 then lo else hi in
    let d = (word lsr t.wide_shift.(i)) land ((1 lsl t.bits.(i)) - 1) in
    State.set_index s i (d + t.lows.(i))
  done

let pp_layout ppf t =
  Format.fprintf ppf
    "@[<v>codec: %d slots, %.3g states, dense %d bits, packed %d bits@,"
    (slots t) t.states t.dense_bits t.packed_bits;
  Array.iteri
    (fun i base ->
      Format.fprintf ppf "  slot %d: base %d  low %d  bits %d  shift %d%s@,"
        i base t.lows.(i) t.bits.(i) t.shifts.(i)
        (if dense_ok t then Printf.sprintf "  weight %d" t.weights.(i) else ""))
    t.bases;
  Format.fprintf ppf "@]"
