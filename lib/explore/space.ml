module Env = Guarded.Env
module State = Guarded.State
module Var = Guarded.Var
module Domain = Guarded.Domain

type t = {
  env : Env.t;
  size : int;
  bases : int array;  (** domain size per slot *)
  lows : int array;  (** smallest legal value per slot *)
  weights : int array;  (** mixed-radix place values *)
}

exception Too_large of float

let encodable_max = 1 lsl 60

let create ?(max_states = 2_000_000) env =
  let total = Env.state_space_size env in
  if total > float_of_int (min max_states encodable_max) then
    raise (Too_large total);
  let vars = Env.vars env in
  let n = Array.length vars in
  let bases = Array.map (fun v -> Domain.size (Var.domain v)) vars in
  let lows =
    Array.map
      (fun v ->
        match Var.domain v with
        | Guarded.Domain.Range { lo; _ } -> lo
        | Guarded.Domain.Bool | Guarded.Domain.Enum _ -> 0)
      vars
  in
  let weights = Array.make n 1 in
  for i = 1 to n - 1 do
    weights.(i) <- weights.(i - 1) * bases.(i - 1)
  done;
  { env; size = int_of_float total; bases; lows; weights }

let create_unbounded env = create ~max_states:encodable_max env
let env t = t.env
let size t = t.size

let encode t s =
  let acc = ref 0 in
  for i = 0 to Array.length t.bases - 1 do
    let digit = State.get_index s i - t.lows.(i) in
    if digit < 0 || digit >= t.bases.(i) then
      invalid_arg "Space.encode: state outside domains";
    acc := !acc + (digit * t.weights.(i))
  done;
  !acc

let decode_into t id s =
  let rem = ref id in
  for i = 0 to Array.length t.bases - 1 do
    State.set_index s i ((!rem mod t.bases.(i)) + t.lows.(i));
    rem := !rem / t.bases.(i)
  done

let decode t id =
  let s = State.make t.env in
  decode_into t id s;
  s

let iter t f =
  let buf = State.make t.env in
  for id = 0 to t.size - 1 do
    decode_into t id buf;
    f id buf
  done

let satisfying t p =
  let acc = ref [] in
  iter t (fun id s -> if p s then acc := id :: !acc);
  List.rev !acc

let count_satisfying t p =
  let c = ref 0 in
  iter t (fun _ s -> if p s then incr c);
  !c
