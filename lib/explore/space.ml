module Env = Guarded.Env
module State = Guarded.State

(* A space is the dense layout of a codec plus the materialization cap:
   the mixed-radix arithmetic itself lives in Codec (one audited
   implementation, shared with the packed and wide layouts). *)
type t = { codec : Codec.t; size : int }

exception Too_large of float

let encodable_max = 1 lsl 60

let create ?(max_states = 2_000_000) env =
  let codec = Codec.of_env env in
  let total = Codec.states codec in
  if total > float_of_int (min max_states encodable_max) then
    raise (Too_large total);
  { codec; size = int_of_float total }

let create_unbounded env = create ~max_states:encodable_max env
let env t = Codec.env t.codec
let size t = t.size
let codec t = t.codec
let encode t s = Codec.encode_dense t.codec s
let decode_into t id s = Codec.decode_dense_into t.codec id s

let decode t id =
  let s = State.make (env t) in
  decode_into t id s;
  s

let iter t f =
  let buf = State.make (env t) in
  for id = 0 to t.size - 1 do
    decode_into t id buf;
    f id buf
  done

let satisfying t p =
  let acc = ref [] in
  iter t (fun id s -> if p s then acc := id :: !acc);
  List.rev !acc

let count_satisfying t p =
  let c = ref 0 in
  iter t (fun _ s -> if p s then incr c);
  !c
