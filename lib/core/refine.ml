module State = Guarded.State
module Var = Guarded.Var
module Compile = Guarded.Compile
module Space = Explore.Space
module Engine = Explore.Engine

type failure =
  | Unsimulated_step of {
      action : string;
      pre : Guarded.State.t;
      post : Guarded.State.t;
    }
  | Invariant_mismatch of Guarded.State.t
  | Stutter_divergence of Guarded.State.t list

type t = {
  abstract_name : string;
  concrete_name : string;
  stutter_steps : int;
  simulated_steps : int;
  result : (unit, failure) result;
}

let ok t = match t.result with Ok () -> true | Error _ -> false

let check ?(within = fun _ -> true) ~abstract_env ~engine ~abstract_program
    ~concrete_program ~projection ~abstract_invariant ~concrete_invariant () =
  let abs_env = abstract_env in
  let abs_vars = Guarded.Env.vars abs_env in
  Array.iter
    (fun av ->
      match List.find_opt (fun (a, _) -> Var.equal a av) projection with
      | None ->
          invalid_arg
            (Printf.sprintf "Refine.check: abstract variable %s not projected"
               (Var.name av))
      | Some (a, c) ->
          if not (Guarded.Domain.equal (Var.domain a) (Var.domain c)) then
            invalid_arg
              (Printf.sprintf "Refine.check: domain mismatch on %s"
                 (Var.name a)))
    abs_vars;
  let project conc =
    State.init abs_env (fun av ->
        let _, cv = List.find (fun (a, _) -> Var.equal a av) projection in
        State.get conc cv)
  in
  let abs_actions =
    Array.map
      (fun a -> Compile.action ~index:0 a)
      (Guarded.Program.actions abstract_program)
  in
  let conc_cp = Compile.program concrete_program in
  let stutter = ref 0 and simulated = ref 0 in
  let failure = ref None in
  let conc_post = State.make (Engine.env engine) in
  (* 1 + 2: simulation and invariant agreement over every concrete state *)
  (try
     Engine.iter_states engine (fun cs ->
       if within cs then begin
         let abs_pre = project cs in
         if concrete_invariant cs <> abstract_invariant abs_pre then begin
           failure := Some (Invariant_mismatch (State.copy cs));
           raise Exit
         end;
         Array.iter
           (fun (ca : Compile.action) ->
             if ca.enabled cs then begin
               ca.apply_into cs conc_post;
               let abs_post = project conc_post in
               if State.equal abs_pre abs_post then incr stutter
               else begin
                 let simulated_by_abstract =
                   Array.exists
                     (fun (aa : Compile.action) ->
                       aa.enabled abs_pre
                       && State.equal (aa.apply abs_pre) abs_post)
                     abs_actions
                 in
                 if simulated_by_abstract then incr simulated
                 else begin
                   failure :=
                     Some
                       (Unsimulated_step
                          {
                            action = Guarded.Action.name ca.source;
                            pre = State.copy cs;
                            post = State.copy conc_post;
                          });
                   raise Exit
                 end
               end
             end)
           conc_cp.Compile.actions
       end)
   with Exit -> ());
  (* 3: no stutter cycles outside the concrete invariant. The region of
     states where [within ∧ ¬invariant] holds, restricted to stutter edges
     (projected pre = projected post), must be acyclic. *)
  (if !failure = None then
     let region =
       Engine.region engine conc_cp ~from:Engine.All
         ~target:(fun s -> (not (within s)) || concrete_invariant s)
     in
     let abs_of = Array.map (fun key -> project (Engine.decode_key engine key))
         region.Engine.node_key
     in
     let stutters (e : _ Dgraph.Digraph.edge) =
       State.equal abs_of.(e.src) abs_of.(e.dst)
     in
     let g = Dgraph.Digraph.filter_edges stutters region.Engine.graph in
     match Dgraph.Topo.find_cycle g with
     | Some cycle ->
         failure :=
           Some
             (Stutter_divergence
                (List.map (fun v -> Engine.state_of_node engine region v) cycle))
     | None -> ());
  {
    abstract_name = Guarded.Program.name abstract_program;
    concrete_name = Guarded.Program.name concrete_program;
    stutter_steps = !stutter;
    simulated_steps = !simulated;
    result = (match !failure with None -> Ok () | Some f -> Error f);
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>refinement %s -> %s: %s (%d simulated steps, %d stutters)%s@]"
    t.concrete_name t.abstract_name
    (if ok t then "VALID" else "INVALID")
    t.simulated_steps t.stutter_steps
    (match t.result with
    | Ok () -> ""
    | Error (Unsimulated_step { action; _ }) ->
        Printf.sprintf "\n  unsimulated step by %s" action
    | Error (Invariant_mismatch _) -> "\n  invariant mismatch"
    | Error (Stutter_divergence c) ->
        Printf.sprintf "\n  stutter divergence (cycle of %d)" (List.length c))
