module State = Guarded.State
module Compile = Guarded.Compile
module Engine = Explore.Engine

type t = {
  rank_count : int;
  by_rank : (Guarded.State.t -> bool) array array;
      (** [by_rank.(r-1)] = compiled constraints whose edges target rank [r]. *)
}

let of_cgraph g =
  match Cgraph.pair_rank g with
  | None -> None
  | Some ranks ->
      let pairs = Cgraph.pairs g in
      let rank_count = Array.fold_left max 0 ranks in
      let buckets = Array.make rank_count [] in
      Array.iteri
        (fun i (p : Cgraph.pair) ->
          let r = ranks.(i) in
          buckets.(r - 1) <- Constr.compile p.constr :: buckets.(r - 1))
        pairs;
      Some { rank_count; by_rank = Array.map Array.of_list buckets }

let rank_count t = t.rank_count

let value t s =
  Array.map
    (fun preds ->
      Array.fold_left (fun acc c -> if c s then acc else acc + 1) 0 preds)
    t.by_rank

let compare_values (a : int array) (b : int array) = compare a b

let total_violations t s = Array.fold_left ( + ) 0 (value t s)

type failure = {
  action : string;
  pre : Guarded.State.t;
  post : Guarded.State.t;
  kind : [ `Convergence_did_not_decrease | `Closure_increased ];
}

let check ~engine ~spec ~cgraph t =
  let tpred = Spec.compile_fault_span spec in
  let post = State.make (Engine.env engine) in
  let closure = Compile.program (Spec.program spec) in
  let conv =
    Array.map
      (fun (p : Cgraph.pair) -> Compile.action ~index:0 p.action)
      (Cgraph.pairs cgraph)
  in
  let failure = ref None in
  let scan kind actions strict =
    Array.iter
      (fun (ca : Compile.action) ->
        if !failure = None then
          try
            Engine.iter_states engine (fun s ->
                if tpred s && ca.enabled s then begin
                  ca.apply_into s post;
                  let vp = value t s and vq = value t post in
                  let c = compare_values vq vp in
                  if (strict && c >= 0) || ((not strict) && c > 0) then begin
                    failure :=
                      Some
                        {
                          action = Guarded.Action.name ca.source;
                          pre = State.copy s;
                          post = State.copy post;
                          kind;
                        };
                    raise Exit
                  end
                end)
          with Exit -> ())
      actions
  in
  scan `Convergence_did_not_decrease conv true;
  if !failure = None then
    scan `Closure_increased closure.Compile.actions false;
  match !failure with None -> Ok () | Some f -> Error f

let pp_failure env ppf f =
  Format.fprintf ppf "@[<v>%s %s: pre %a -> post %a@]"
    (match f.kind with
    | `Convergence_did_not_decrease ->
        "convergence action did not decrease the variant:"
    | `Closure_increased -> "closure action increased the variant:")
    f.action (State.pp env) f.pre (State.pp env) f.post
