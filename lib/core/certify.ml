type check = { label : string; ok : bool; detail : string option }

(* Machine-readable digest of a tolerance certification — what a
   budget-sweep consumer needs without re-parsing check labels. *)
type tolerance_summary = {
  span_states : int;
  span_roots : int;
  span_max_depth : int;
  convergence_worst : int option;
      (* exact worst-case recovery steps when the fault-free region is
         acyclic; None when convergence holds only under weak fairness
         or fails *)
}

type t = {
  theorem : string;
  spec_name : string;
  shapes : (string * Dgraph.Classify.shape) list;
  checks : check list;
  summary : tolerance_summary option;
}

let ok t = List.for_all (fun c -> c.ok) t.checks
let failures t = List.filter (fun c -> not c.ok) t.checks
let check_pass label = { label; ok = true; detail = None }
let check_fail label ~detail = { label; ok = false; detail = Some detail }
let check_info label ~detail = { label; ok = true; detail = Some detail }

let of_closure_result env label = function
  | Ok () -> check_pass label
  | Error v ->
      check_fail label
        ~detail:(Format.asprintf "%a" (Explore.Closure.pp_violation env) v)

(* A cycle through a fault edge (label >= first_fault_index) in the combined
   ¬S region: pick a fault edge whose endpoints share an SCC, then close the
   loop with a BFS from its destination back to its source inside that
   component. Returned as the edge list of the cycle, fault edge first. *)
let find_fault_cycle (region : Explore.Engine.region) ~first_fault_index =
  let g = region.Explore.Engine.graph in
  let comp = (Dgraph.Scc.compute g).Dgraph.Scc.component in
  match
    List.find_opt
      (fun (e : int Dgraph.Digraph.edge) ->
        e.label >= first_fault_index && comp.(e.src) = comp.(e.dst))
      (Dgraph.Digraph.edges g)
  with
  | None -> None
  | Some e when e.src = e.dst -> Some [ e ]
  | Some e ->
      let c = comp.(e.src) in
      let parent = Array.make (Dgraph.Digraph.node_count g) None in
      let seen = Array.make (Dgraph.Digraph.node_count g) false in
      seen.(e.dst) <- true;
      let q = Queue.create () in
      Queue.add e.dst q;
      let found = ref false in
      while (not !found) && not (Queue.is_empty q) do
        let v = Queue.pop q in
        List.iter
          (fun (e' : int Dgraph.Digraph.edge) ->
            if (not !found) && (not seen.(e'.dst)) && comp.(e'.dst) = c
            then begin
              seen.(e'.dst) <- true;
              parent.(e'.dst) <- Some e';
              if e'.dst = e.src then found := true else Queue.add e'.dst q
            end)
          (Dgraph.Digraph.out_edges g v)
      done;
      if not !found then None
      else begin
        let rec back v acc =
          match parent.(v) with
          | None -> acc
          | Some (pe : int Dgraph.Digraph.edge) -> back pe.src (pe :: acc)
        in
        Some (e :: back e.src [])
      end

let render_cycle engine region (combined : Guarded.Compile.program)
    ~first_fault_index cycle =
  let env = Explore.Engine.env engine in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "fault-sustained cycle outside S:";
  List.iter
    (fun (e : int Dgraph.Digraph.edge) ->
      let s = Explore.Engine.state_of_node engine region e.src in
      let a = combined.Guarded.Compile.actions.(e.label).Guarded.Compile.source in
      Buffer.add_string buf
        (Format.asprintf "\n      %a  --[%s%s]-->" (Guarded.State.pp env) s
           (if e.label >= first_fault_index then "FAULT " else "")
           (Guarded.Action.name a)))
    cycle;
  (match cycle with
  | [] -> ()
  | (e0 : int Dgraph.Digraph.edge) :: _ ->
      let s = Explore.Engine.state_of_node engine region e0.src in
      Buffer.add_string buf
        (Format.asprintf "\n      %a" (Guarded.State.pp env) s));
  Buffer.contents buf

(* The post-span certificate phases (closure scan, convergence,
   recurrence) are cancellable but not resumable: an interruption there
   must not hand the caller a snapshot of some internal sub-search (the
   convergence/recurrence region queries write "region"-kind
   checkpoints that a certify [--resume] could never consume). Strip
   the snapshot so the CLI reports the incomplete verdict without
   persisting a misleading checkpoint. *)
let unresumable_phase f =
  try f ()
  with Explore.Engine.Interrupted i ->
    raise (Explore.Engine.Interrupted { i with snapshot = None })

let tolerance ~engine ~program ~faults ?(envs = []) ~invariant ?from ?budget
    ?resume ?span ?(require_recurrence_resilience = false) ~name () =
  let env = Explore.Engine.env engine in
  let obs = Explore.Engine.obs engine in
  let guard = Explore.Engine.guard engine in
  let guard_on = Rt.Guard.active guard in
  let from =
    match from with Some f -> f | None -> Explore.Engine.Pred invariant
  in
  let cp = Guarded.Compile.program program in
  let fp =
    Guarded.Compile.program
      (Guarded.Program.make
         ~name:(Guarded.Program.name program ^ ":faults")
         env faults)
  in
  let ep =
    match envs with
    | [] -> None
    | _ ->
        Some
          (Guarded.Compile.program
             (Guarded.Program.make
                ~name:(Guarded.Program.name program ^ ":envs")
                env envs))
  in
  let span =
    match span with
    | Some s -> s  (* caller-supplied, for the same configuration *)
    | None ->
        Obs.Ctx.time obs "certify.span" @@ fun () ->
        Explore.Faultspan.compute engine ~program:cp ?envs:ep ?budget ?resume
          ~faults:fp ~from ()
  in
  let span_states = Explore.Faultspan.states span in
  let span_check =
    let hist = Explore.Faultspan.depth_histogram span in
    check_info
      (Printf.sprintf
         "span: T = closure of %d root states under program ∪ %sfaults%s; |T| = %d"
         (Explore.Faultspan.root_count span)
         (if ep = None then "" else "environment ∪ ")
         (match budget with
         | Some b -> Printf.sprintf " (≤ %d fault steps)" b
         | None -> " (unbounded faults)")
         (Explore.Faultspan.count span))
      ~detail:
        (Printf.sprintf
           "T ⊇ S by construction; states by minimal fault depth: %s"
           (String.concat ", "
              (Array.to_list
                 (Array.mapi
                    (fun d c -> Printf.sprintf "%d:%d" d c)
                    hist))))
  in
  let closure_check =
    unresumable_phase @@ fun () ->
    Obs.Ctx.time obs "certify.closure" @@ fun () ->
    let include_faults = budget = None in
    let label =
      Printf.sprintf "closure: every program%s%s action maps T into T"
        (if ep = None then "" else ", environment")
        (if include_faults then
           if ep = None then " and fault" else ", and fault"
         else "")
    in
    let compile_acts (prog : Guarded.Compile.program)
        (eprog : Guarded.Compile.program option)
        (fprog : Guarded.Compile.program) =
      let base =
        match eprog with
        | None -> prog.Guarded.Compile.actions
        | Some e ->
            Array.append prog.Guarded.Compile.actions e.Guarded.Compile.actions
      in
      if include_faults then Array.append base fprog.Guarded.Compile.actions
      else base
    in
    (* Stream the span by index in {!Explore.Faultspan.iter} order —
       decode-on-demand into a scan buffer instead of materializing
       |T| boxed states — stopping at the first violating action in
       state order × action order. The order is the same for the
       sequential and the chunk-ordered parallel scan, so both report
       the same first violation. *)
    let first_violation ~poll acts buf post lo hi =
      let violation = ref None in
      (try
         for i = lo to hi - 1 do
           (if poll && i land 2047 = 0 then
              match Rt.Guard.poll guard ~states:i ~bytes:0 with
              | None -> ()
              | Some reason ->
                  raise
                    (Explore.Engine.Interrupted
                       {
                         reason;
                         states_seen = Explore.Faultspan.count span;
                         frontier_size = 0;
                         snapshot = None;
                       }));
           Explore.Faultspan.decode_nth_into span i buf;
           Array.iter
             (fun (ca : Guarded.Compile.action) ->
               if ca.enabled buf then begin
                 ca.apply_into buf post;
                 if not (Explore.Faultspan.mem span post) then begin
                   violation :=
                     Some
                       (Format.asprintf "%a  --[%s]-->  %a  (outside T)"
                          (Guarded.State.pp env) buf
                          (Guarded.Action.name ca.Guarded.Compile.source)
                          (Guarded.State.pp env) post);
                   raise Exit
                 end
               end)
             acts
         done
       with Exit -> ());
      !violation
    in
    let n = Explore.Faultspan.count span in
    let jobs = Explore.Engine.jobs engine in
    let violation =
      if Explore.Engine.backend engine <> Explore.Engine.Parallel || jobs = 1
      then
        first_violation ~poll:guard_on (compile_acts cp ep fp)
          (Guarded.State.make env) (Guarded.State.make env) 0 n
      else begin
        (* Chunk-boundary cancellation point: worker loops do not raise
           across the pool, so the parallel scan checks once up front and
           runs to completion (bounded by the already-materialized span). *)
        if guard_on then begin
          match Rt.Guard.poll guard ~states:n ~bytes:0 with
          | None -> ()
          | Some reason ->
              raise
                (Explore.Engine.Interrupted
                   {
                     reason;
                     states_seen = n;
                     frontier_size = 0;
                     snapshot = None;
                   })
        end;
        Par.Pool.use ?pool:(Explore.Engine.pool engine) ~jobs @@ fun pool ->
        (* Compiled actions carry private scratch, so each worker domain
           recompiles its own copies; decode buffers are per-worker too. *)
        let worker_acts =
          Array.init (Par.Pool.jobs pool) (fun w ->
              if w = 0 then compile_acts cp ep fp
              else
                compile_acts
                  (Guarded.Compile.program cp.Guarded.Compile.source)
                  (Option.map
                     (fun (e : Guarded.Compile.program) ->
                       Guarded.Compile.program e.Guarded.Compile.source)
                     ep)
                  (Guarded.Compile.program fp.Guarded.Compile.source))
        in
        let worker_buf =
          Array.init (Par.Pool.jobs pool) (fun _ -> Guarded.State.make env)
        in
        let worker_post =
          Array.init (Par.Pool.jobs pool) (fun _ -> Guarded.State.make env)
        in
        (* Chunk-ordered reduce: the first Some is the violation the
           sequential scan would have reported. *)
        Par.Pool.map_reduce pool ~n
          ~map:(fun ~worker lo hi ->
            first_violation ~poll:false worker_acts.(worker)
              worker_buf.(worker) worker_post.(worker) lo hi)
          (fun acc v -> match acc with Some _ -> acc | None -> v)
          None
      end
    in
    match violation with
    | None -> check_pass label
    | Some d -> check_fail label ~detail:d
  in
  (* The environment can fire at any time — inside S included — so S must
     be closed under every environment action: an environment step that
     breaks legitimacy makes stabilization unachievable (the perturbation
     recurs forever, unbudgeted). Scanned over the span's S-states. *)
  let env_closure_check =
    match ep with
    | None -> None
    | Some ecp ->
        Some
          ( unresumable_phase @@ fun () ->
            Obs.Ctx.time obs "certify.env_closure" @@ fun () ->
            let label =
              "environment closure: every environment action maps S into S"
            in
            let buf = Guarded.State.make env in
            let post = Guarded.State.make env in
            let n = Explore.Faultspan.count span in
            let violation = ref None in
            (try
               for i = 0 to n - 1 do
                 (if guard_on && i land 2047 = 0 then
                    match Rt.Guard.poll guard ~states:i ~bytes:0 with
                    | None -> ()
                    | Some reason ->
                        raise
                          (Explore.Engine.Interrupted
                             {
                               reason;
                               states_seen = n;
                               frontier_size = 0;
                               snapshot = None;
                             }));
                 Explore.Faultspan.decode_nth_into span i buf;
                 if invariant buf then
                   Array.iter
                     (fun (ca : Guarded.Compile.action) ->
                       if ca.enabled buf then begin
                         ca.apply_into buf post;
                         if not (invariant post) then begin
                           violation :=
                             Some
                               (Format.asprintf
                                  "%a  --[%s]-->  %a  (outside S)"
                                  (Guarded.State.pp env) buf
                                  (Guarded.Action.name
                                     ca.Guarded.Compile.source)
                                  (Guarded.State.pp env) post);
                           raise Exit
                         end
                       end)
                     ecp.Guarded.Compile.actions
               done
             with Exit -> ());
            match !violation with
            | None -> check_pass label
            | Some d -> check_fail label ~detail:d )
  in
  (* Recovery happens while the environment keeps stepping: convergence
     (and the recurrence analysis below) runs over program ∪ environment,
     not the program alone. *)
  let conv_cp =
    match envs with
    | [] -> cp
    | _ -> Guarded.Compile.program (Guarded.Program.add_actions program envs)
  in
  let conv_ok, conv_worst, conv_check =
    match
      unresumable_phase @@ fun () ->
      Obs.Ctx.time obs "certify.convergence" @@ fun () ->
      Explore.Convergence.check_fair engine conv_cp
        ~from:(Explore.Engine.Seeds span_states) ~target:invariant
    with
    | Explore.Convergence.Converges st ->
        ( true,
          st.Explore.Convergence.worst_case_steps,
          check_pass
            (Printf.sprintf
               "convergence: every fault-free computation from T%s reaches S \
                (|T \\ S| = %d%s)"
               (if ep = None then ""
                else " (environment steps interleaved)")
               st.Explore.Convergence.region_states
               (match st.Explore.Convergence.worst_case_steps with
               | Some w -> Printf.sprintf ", worst case %d steps" w
               | None -> ", under weak fairness")) )
    | Explore.Convergence.Fails f ->
        ( false,
          None,
          check_fail "convergence: a computation from T never reaches S"
            ~detail:
              (Format.asprintf "%a" (Explore.Convergence.pp_failure env) f) )
    | Explore.Convergence.Unknown sample ->
        ( false,
          None,
          check_fail
            "convergence: the weak-fairness criterion could not discharge \
             an SCC of T \\ S"
            ~detail:
              (String.concat "\n      "
                 ("sample states of the undischarged SCC:"
                 :: List.map
                      (Format.asprintf "%a" (Guarded.State.pp env))
                      sample)) )
  in
  let env_closure_ok =
    match env_closure_check with Some c -> c.ok | None -> true
  in
  let tolerance_check =
    if closure_check.ok && env_closure_ok && conv_ok then
      check_pass
        "nonmasking tolerance: faults occurring finitely often cannot \
         prevent recovery to S"
    else
      check_fail
        "nonmasking tolerance: closure or convergence of T failed"
        ~detail:"see the failing checks above"
  in
  let recurrence_check =
    unresumable_phase @@ fun () ->
    Obs.Ctx.time obs "certify.recurrence" @@ fun () ->
    let first_fault_index =
      Array.length conv_cp.Guarded.Compile.actions
    in
    match
      let combined =
        Guarded.Compile.program
          (Guarded.Program.add_actions
             (match envs with
             | [] -> program
             | _ -> Guarded.Program.add_actions program envs)
             faults)
      in
      let region =
        Explore.Engine.region engine combined
          ~from:(Explore.Engine.Seeds span_states) ~target:invariant
      in
      (combined, region)
    with
    | exception Explore.Engine.Region_overflow n ->
        check_info
          "recurrence: analysis skipped (program ∪ fault region exceeds \
           the engine budget)"
          ~detail:(Printf.sprintf "visited %d states before overflow" n)
    | combined, region -> (
        match find_fault_cycle region ~first_fault_index with
        | None ->
            check_pass
              "recurrence: no fault-sustained livelock — recovery completes \
               even under perpetually recurring faults"
        | Some cycle ->
            let detail =
              render_cycle engine region combined ~first_fault_index cycle
            in
            if require_recurrence_resilience then
              check_fail
                "recurrence: recurring faults can perpetually disrupt \
                 recovery"
                ~detail
            else
              check_info
                "recurrence: recurring faults can perpetually disrupt \
                 recovery (informational — nonmasking tolerance assumes \
                 faults eventually stop)"
                ~detail)
  in
  let cert =
    {
      theorem = "Tolerance";
      spec_name = name;
      shapes = [];
      checks =
        [ span_check; closure_check ]
        @ (match env_closure_check with Some c -> [ c ] | None -> [])
        @ [ conv_check; tolerance_check; recurrence_check ];
      summary =
        Some
          {
            span_states = Explore.Faultspan.count span;
            span_roots = Explore.Faultspan.root_count span;
            span_max_depth = Explore.Faultspan.max_depth span;
            convergence_worst = conv_worst;
          };
    }
  in
  if Obs.Ctx.enabled obs then begin
    Obs.Metrics.incr (Obs.Ctx.counter obs "certify.certificates");
    Obs.Ctx.emit obs "certify.done"
      [ ("name", Obs.Sink.S name); ("ok", Obs.Sink.B (ok cert)) ]
  end;
  cert

let pp_check ppf c =
  Format.fprintf ppf "  [%s] %s%s"
    (if c.ok then "ok" else "FAIL")
    c.label
    (match c.detail with Some d -> "\n    " ^ d | None -> "")

let pp ppf t =
  let fails = failures t in
  Format.fprintf ppf "@[<v>%s certificate for %s: %s (%d checks%s)@,"
    t.theorem t.spec_name
    (if ok t then "VALID" else "INVALID")
    (List.length t.checks)
    (if fails = [] then ""
     else Printf.sprintf ", %d failed" (List.length fails));
  List.iter
    (fun (layer, shape) ->
      Format.fprintf ppf "  graph %s: %s@," layer
        (Dgraph.Classify.shape_to_string shape))
    t.shapes;
  List.iter (fun c -> Format.fprintf ppf "%a@," pp_check c) fails;
  Format.fprintf ppf "@]"

let pp_full ppf t =
  Format.fprintf ppf "@[<v>%s certificate for %s: %s@," t.theorem t.spec_name
    (if ok t then "VALID" else "INVALID");
  List.iter
    (fun (layer, shape) ->
      Format.fprintf ppf "  graph %s: %s@," layer
        (Dgraph.Classify.shape_to_string shape))
    t.shapes;
  List.iter (fun c -> Format.fprintf ppf "%a@," pp_check c) t.checks;
  Format.fprintf ppf "@]"
