type step_result = {
  label : string;
  contained : bool;
  closed : (unit, Explore.Closure.violation) result;
  converges : (Explore.Convergence.stats, Explore.Convergence.failure) result;
}

type t = { spec_name : string; steps : step_result list }

let step_ok s =
  s.contained
  && (match s.closed with Ok () -> true | Error _ -> false)
  && match s.converges with Ok _ -> true | Error _ -> false

let ok t = List.for_all step_ok t.steps

let validate ~engine ~program ~name preds =
  if List.length preds < 2 then
    invalid_arg "Stair.validate: need at least R_0 and R_1";
  let cp = Guarded.Compile.program program in
  let rec pairs = function
    | (la, pa) :: ((lb, pb) :: _ as rest) ->
        let contained =
          (* R_{i+1} ⟹ R_i *)
          let ok = ref true in
          Explore.Engine.iter_states engine (fun s ->
              if pb s && not (pa s) then ok := false);
          !ok
        in
        (* The *source* predicate of the step must be closed; the last
           predicate's closure is checked as the source of no step, so also
           check the target here when it is the final one. *)
        let closed = Explore.Closure.program_closed engine cp ~pred:pa in
        let converges =
          Explore.Convergence.check_unfair engine cp
            ~from:(Explore.Engine.Pred pa) ~target:pb
        in
        { label = Printf.sprintf "%s -> %s" la lb; contained; closed; converges }
        :: pairs rest
    | _ -> []
  in
  let steps = pairs preds in
  (* finally, the bottom predicate (S) must itself be closed *)
  let bottom_label, bottom_pred = List.nth preds (List.length preds - 1) in
  let bottom =
    {
      label = Printf.sprintf "%s closed" bottom_label;
      contained = true;
      closed = Explore.Closure.program_closed engine cp ~pred:bottom_pred;
      converges =
        Ok
          {
            Explore.Convergence.region_states = 0;
            explored = 0;
            worst_case_steps = Some 0;
          };
    }
  in
  { spec_name = name; steps = steps @ [ bottom ] }

let pp ppf t =
  Format.fprintf ppf "@[<v>convergence stair for %s: %s@," t.spec_name
    (if ok t then "VALID" else "INVALID");
  List.iter
    (fun s ->
      Format.fprintf ppf "  [%s] %s%s%s%s@,"
        (if step_ok s then "ok" else "FAIL")
        s.label
        (if s.contained then "" else " (containment fails)")
        (match s.closed with Ok () -> "" | Error _ -> " (closure fails)")
        (match s.converges with
        | Ok { worst_case_steps = Some w; _ } ->
            Printf.sprintf " (worst %d steps)" w
        | Ok _ -> ""
        | Error _ -> " (convergence fails)"))
    t.steps;
  Format.fprintf ppf "@]"
