module Expr = Guarded.Expr
module State = Guarded.State
module Action = Guarded.Action
module Compile = Guarded.Compile
module Engine = Explore.Engine
module Closure = Explore.Closure

let identical_actions a b =
  Expr.equal (Action.guard a) (Action.guard b)
  && List.length (Action.assigns a) = List.length (Action.assigns b)
  && List.for_all2
       (fun (v1, e1) (v2, e2) -> Guarded.Var.equal v1 v2 && Expr.equal_num e1 e2)
       (Action.assigns a) (Action.assigns b)

(* ∀ in-domain s: hyp s ⟹ conc s, with a counterexample on failure. *)
let implication engine env ~label ~hyp ~conc =
  let counterexample = ref None in
  (try
     Engine.iter_states engine (fun s ->
         if hyp s && not (conc s) then begin
           counterexample := Some (State.copy s);
           raise Exit
         end)
   with Exit -> ());
  match !counterexample with
  | None -> Certify.check_pass label
  | Some s ->
      Certify.check_fail label
        ~detail:(Format.asprintf "counterexample %a" (State.pp env) s)

(* ∀ s: given s ∧ enabled s ⟹ pred (post s). *)
let establishes engine env ~label ~given (ca : Compile.action) ~pred =
  let post = State.make (Engine.env engine) in
  let counterexample = ref None in
  (try
     Engine.iter_states engine (fun s ->
         if given s && ca.enabled s then begin
           ca.apply_into s post;
           if not (pred post) then begin
             counterexample := Some (State.copy s, State.copy post);
             raise Exit
           end
         end)
   with Exit -> ());
  match !counterexample with
  | None -> Certify.check_pass label
  | Some (pre, post) ->
      Certify.check_fail label
        ~detail:
          (Format.asprintf "pre %a -> post %a" (State.pp env) pre
             (State.pp env) post)

let preserves engine env ~label ~given ca ~pred =
  Certify.of_closure_result env label
    (Closure.action_preserves ~given engine ca ~pred)

let validate ~theorem ~shape_ok ~shape_want ~modulo_invariant ~check_ordering
    ~engine ~spec layers =
  let env = Spec.env spec in
  let s_pred = Spec.compile_invariant spec in
  let t_pred = Spec.compile_fault_span spec in
  let layer_arr = Array.of_list layers in
  let layer_pairs = Array.map Cgraph.pairs layer_arr in
  let all_pairs = Array.to_list layer_pairs |> Array.concat |> Array.to_list in
  let compiled_constraints =
    List.map (fun (p : Cgraph.pair) -> Constr.compile p.constr) all_pairs
  in
  let all_constraints_hold s =
    List.for_all (fun c -> c s) compiled_constraints
  in
  let closure_actions = Compile.program (Spec.program spec) in
  let conv_compiled =
    Array.map
      (fun pairs ->
        Array.map
          (fun (p : Cgraph.pair) -> Compile.action ~index:0 p.action)
          pairs)
      layer_pairs
  in
  (* H_l: fault span, all constraints of layers < l, and optionally ¬S. *)
  let hypothesis l =
    let lower =
      List.concat
        (List.init l (fun i ->
             Array.to_list layer_pairs.(i)
             |> List.map (fun (p : Cgraph.pair) -> Constr.compile p.constr)))
    in
    fun s ->
      t_pred s
      && List.for_all (fun c -> c s) lower
      && ((not modulo_invariant) || not (s_pred s))
  in
  let checks = ref [] in
  let add c = checks := c :: !checks in
  (* Sanity. *)
  add
    (implication engine env ~label:"S implies T" ~hyp:s_pred ~conc:t_pred);
  add
    (implication engine env ~label:"T and all constraints imply S"
       ~hyp:(fun s -> t_pred s && all_constraints_hold s)
       ~conc:s_pred);
  (* Candidate triple: closure actions preserve S and T. *)
  Array.iter
    (fun (ca : Compile.action) ->
      let n = Action.name ca.source in
      add
        (preserves engine env
           ~label:(Printf.sprintf "closure %s preserves S" n)
           ~given:(fun _ -> true)
           ca ~pred:s_pred);
      add
        (preserves engine env
           ~label:(Printf.sprintf "closure %s preserves T" n)
           ~given:(fun _ -> true)
           ca ~pred:t_pred))
    closure_actions.Compile.actions;
  (* Convergence-action form, per layer. *)
  Array.iteri
    (fun l pairs ->
      let h = hypothesis l in
      Array.iteri
        (fun i (p : Cgraph.pair) ->
          let ca = conv_compiled.(l).(i) in
          let cname = Constr.name p.constr in
          let aname = Action.name p.action in
          let c = Constr.compile p.constr in
          add
            (preserves engine env
               ~label:(Printf.sprintf "convergence %s preserves T" aname)
               ~given:(fun _ -> true)
               ca ~pred:t_pred);
          add
            (preserves engine env
               ~label:(Printf.sprintf "convergence %s preserves S" aname)
               ~given:(fun _ -> true)
               ca ~pred:s_pred);
          add
            (implication engine env
               ~label:
                 (Printf.sprintf "%s enabled only when %s violated" aname
                    cname)
               ~hyp:(fun s -> h s && ca.enabled s)
               ~conc:(fun s -> not (c s)));
          add
            (implication engine env
               ~label:
                 (Printf.sprintf "%s enabled whenever %s violated" aname
                    cname)
               ~hyp:(fun s -> h s && not (c s))
               ~conc:ca.enabled);
          add
            (establishes engine env
               ~label:(Printf.sprintf "%s establishes %s" aname cname)
               ~given:h ca ~pred:c))
        pairs)
    layer_pairs;
  (* Shapes. *)
  let shapes =
    Array.to_list
      (Array.mapi
         (fun l g ->
           let shape = Cgraph.shape g in
           let label =
             if Array.length layer_arr = 1 then "q"
             else Printf.sprintf "layer %d" l
           in
           if not (shape_ok shape) then
             add
               (Certify.check_fail
                  (Printf.sprintf "constraint graph of %s is %s" label
                     shape_want)
                  ~detail:
                    (Printf.sprintf "graph is %s"
                       (Dgraph.Classify.shape_to_string shape)))
           else
             add
               (Certify.check_pass
                  (Printf.sprintf "constraint graph of %s is %s" label
                     (Dgraph.Classify.shape_to_string shape)));
           (label, shape))
         layer_arr)
  in
  (* Preservation of layer-l constraints by closure actions (with the
     identical-action exemption) and by higher-layer convergence actions. *)
  Array.iteri
    (fun l pairs ->
      let h = hypothesis l in
      Array.iter
        (fun (p : Cgraph.pair) ->
          let cname = Constr.name p.constr in
          let c = Constr.compile p.constr in
          Array.iter
            (fun (ca : Compile.action) ->
              let exempt =
                List.exists
                  (fun l' ->
                    l' <= l
                    && Array.exists
                         (fun (q : Cgraph.pair) ->
                           identical_actions ca.source q.action)
                         layer_pairs.(l'))
                  (List.init (Array.length layer_arr) Fun.id)
              in
              if not exempt then
                add
                  (preserves engine env
                     ~label:
                       (Printf.sprintf "closure %s preserves %s under H_%d"
                          (Action.name ca.source) cname l)
                     ~given:h ca ~pred:c))
            closure_actions.Compile.actions;
          for l' = l + 1 to Array.length layer_arr - 1 do
            Array.iteri
              (fun i' (q : Cgraph.pair) ->
                add
                  (preserves engine env
                     ~label:
                       (Printf.sprintf
                          "convergence %s (layer %d) preserves %s (layer %d)"
                          (Action.name q.action) l' cname l)
                     ~given:h
                     conv_compiled.(l').(i')
                     ~pred:c))
              layer_pairs.(l')
          done)
        pairs)
    layer_pairs;
  (* Per-node ordering within each layer. *)
  if check_ordering then
    Array.iteri
      (fun l g ->
        let h = hypothesis l in
        let pairs = Cgraph.pairs g in
        let n_pairs = Array.length pairs in
        for i = 0 to n_pairs - 1 do
          for k = i + 1 to n_pairs - 1 do
            let _, dst_i = Cgraph.edge_of_pair g i in
            let _, dst_k = Cgraph.edge_of_pair g k in
            if dst_i = dst_k then
              add
                (preserves engine env
                   ~label:
                     (Printf.sprintf
                        "ordering: %s preserves %s (same target node)"
                        (Action.name pairs.(k).action)
                        (Constr.name pairs.(i).constr))
                   ~given:h
                   conv_compiled.(l).(k)
                   ~pred:(Constr.compile pairs.(i).constr))
          done
        done)
      layer_arr;
  {
    Certify.theorem =
      (if modulo_invariant then theorem ^ " (modulo invariant)" else theorem);
    spec_name = Spec.name spec;
    shapes;
    checks = List.rev !checks;
    summary = None;
  }

let validate_theorem1 ~engine ~spec ~cgraph =
  validate ~theorem:"Theorem 1"
    ~shape_ok:(fun s -> s = Dgraph.Classify.Out_tree)
    ~shape_want:"an out-tree" ~modulo_invariant:false ~check_ordering:false
    ~engine ~spec [ cgraph ]

let validate_theorem2 ~engine ~spec ~cgraph =
  validate ~theorem:"Theorem 2"
    ~shape_ok:(fun s -> s <> Dgraph.Classify.Cyclic)
    ~shape_want:"self-looping" ~modulo_invariant:false ~check_ordering:true
    ~engine ~spec [ cgraph ]

let validate_theorem3 ?(modulo_invariant = false) ~engine ~spec layers =
  validate ~theorem:"Theorem 3"
    ~shape_ok:(fun s -> s <> Dgraph.Classify.Cyclic)
    ~shape_want:"self-looping" ~modulo_invariant ~check_ordering:true ~engine
    ~spec layers

let augmented_program spec layers =
  let closure = Guarded.Program.actions (Spec.program spec) in
  let is_closure a =
    Array.exists (fun b -> identical_actions a b) closure
  in
  let extra =
    List.concat_map
      (fun g ->
        Array.to_list (Cgraph.pairs g)
        |> List.filter_map (fun (p : Cgraph.pair) ->
               if is_closure p.action then None else Some p.action))
      layers
  in
  Guarded.Program.add_actions (Spec.program spec) extra
