type plan = {
  certificate : Certify.t;
  cgraphs : Cgraph.t list;
  program : Guarded.Program.t;
}

type error = Graph_error of Cgraph.error | Cyclic_needs_layers

let pp_error ppf = function
  | Graph_error e -> Cgraph.pp_error ppf e
  | Cyclic_needs_layers ->
      Format.pp_print_string ppf
        "the constraint graph is cyclic; partition the convergence actions \
         into layers (Theorem 3)"

let design ?nodes ~engine ~spec layers =
  let nodes =
    match nodes with
    | Some ns -> ns
    | None -> Cgraph.infer_nodes (List.concat layers)
  in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | pairs :: rest -> (
        match Cgraph.build ~nodes ~pairs with
        | Ok g -> build (g :: acc) rest
        | Error e -> Error (Graph_error e))
  in
  match build [] layers with
  | Error e -> Error e
  | Ok cgraphs -> (
      let finish certificate =
        Ok
          {
            certificate;
            cgraphs;
            program = Theorems.augmented_program spec cgraphs;
          }
      in
      match cgraphs with
      | [ g ] -> (
          match Cgraph.shape g with
          | Dgraph.Classify.Out_tree ->
              finish (Theorems.validate_theorem1 ~engine ~spec ~cgraph:g)
          | Dgraph.Classify.Self_looping ->
              finish (Theorems.validate_theorem2 ~engine ~spec ~cgraph:g)
          | Dgraph.Classify.Cyclic -> Error Cyclic_needs_layers)
      | gs ->
          let strict = Theorems.validate_theorem3 ~engine ~spec gs in
          if Certify.ok strict then finish strict
          else
            finish
              (Theorems.validate_theorem3 ~modulo_invariant:true ~engine ~spec
                 gs))
