(** Convergence stairs (Section 7, after Gouda and Multari).

    One of the paper's escape hatches for cyclic constraint graphs: show
    that all computations converge from [T] to [S] in stages. A stair of
    height [k] is a chain of state predicates

    [R_0 ⊇ R_1 ⊇ ... ⊇ R_k]   with [R_0 = T] and [R_k = S],

    such that every [R_i] is closed under the program and every computation
    from [R_i] reaches [R_{i+1}]. Each stage may then be validated with a
    different technique (e.g. Theorem 2 on the restriction of the
    constraint graph to [R_i]-states, which can be self-looping even when
    the unrestricted graph is cyclic).

    This module checks a proposed stair exhaustively on an instance:
    containment, per-step closure, and per-step convergence (without
    fairness, i.e. exactly). *)

type step_result = {
  label : string;
  contained : bool;  (** [R_{i+1} ⟹ R_i]. *)
  closed : (unit, Explore.Closure.violation) result;
  converges : (Explore.Convergence.stats, Explore.Convergence.failure) result;
}

type t = {
  spec_name : string;
  steps : step_result list;  (** One entry per consecutive pair. *)
}

val ok : t -> bool

val validate :
  engine:Explore.Engine.t ->
  program:Guarded.Program.t ->
  name:string ->
  (string * (Guarded.State.t -> bool)) list ->
  t
(** [validate ~engine ~program ~name stairs] checks the chain given as
    labeled predicates, ordered from [R_0 = T] down to [R_k = S].
    @raise Invalid_argument if fewer than two predicates are given. *)

val pp : Format.formatter -> t -> unit
