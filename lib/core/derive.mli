(** The design procedure, end to end.

    Section 3's recipe as a function: given a candidate triple and the
    designer's (constraint, convergence action) pairs — optionally split
    into Theorem-3 layers — build the constraint graph(s), classify their
    shape, select and run the strongest applicable theorem, and return the
    augmented program [p ∪ q] together with the certificate.

    Theorem selection:
    - one layer, out-tree graph → Theorem 1;
    - one layer, self-looping graph → Theorem 2 (the pair order is the
      linear order the theorem requires);
    - several layers → Theorem 3; the literal antecedents are tried first
      and, when they fail, the [modulo_invariant] reading (see
      {!Theorems}) — the certificate's [theorem] field records which one
      succeeded;
    - a cyclic single-layer graph is a design error: re-partition into
      layers (Section 7). *)

type plan = {
  certificate : Certify.t;
  cgraphs : Cgraph.t list;
  program : Guarded.Program.t;  (** The augmented program [p ∪ q]. *)
}

type error =
  | Graph_error of Cgraph.error
  | Cyclic_needs_layers
      (** Single-layer cyclic constraint graph: no theorem applies as is. *)

val design :
  ?nodes:(string * Guarded.Var.Set.t) list ->
  engine:Explore.Engine.t ->
  spec:Spec.t ->
  Cgraph.pair list list ->
  (plan, error) result
(** [design ~engine ~spec layers]. [nodes] defaults to the inferred
    partition ({!Cgraph.infer_nodes}) computed over all pairs. The plan is
    returned even when some certificate obligations fail — inspect
    [Certify.ok plan.certificate]; [Error _] is reserved for structural
    problems that prevent validation from running at all. *)

val pp_error : Format.formatter -> error -> unit
