(** Refinement checking.

    The paper's concluding remarks call for "systematic methods of refining
    programs that preserve the property of convergence" — e.g. replacing
    the diffusing computation's high-atomicity reflection (which reads all
    children at once) by low-atomicity scanning. This module machine-checks
    such a refinement on an instance.

    A refinement is witnessed by a {e projection}: a mapping from each
    abstract variable to the concrete variable that implements it (the
    concrete program may have extra variables — scan pointers, mailboxes).
    The checks, all exhaustive:

    - {b step simulation}: every concrete transition either stutters (the
      projected state is unchanged) or its projection is a transition of
      the abstract program;
    - {b invariant agreement}: a concrete state satisfies the concrete
      invariant iff its projection satisfies the abstract one (supplied as
      predicates);
    - {b non-divergence}: no reachable cycle of pure stutter steps outside
      the invariant (otherwise the concrete program could refine "do
      nothing forever" and lose convergence).

    Together with convergence of the abstract program, these give
    convergence of the concrete one; the library also checks the concrete
    program's convergence directly, so the simulation result is
    corroborated rather than trusted. *)

type failure =
  | Unsimulated_step of {
      action : string;
      pre : Guarded.State.t;  (** Concrete pre-state. *)
      post : Guarded.State.t;  (** Concrete post-state. *)
    }
      (** A non-stutter concrete step whose projection no abstract action
          produces. *)
  | Invariant_mismatch of Guarded.State.t
      (** Concrete and projected invariants disagree here. *)
  | Stutter_divergence of Guarded.State.t list
      (** A cycle of stutter steps outside the invariant. *)

type t = {
  abstract_name : string;
  concrete_name : string;
  stutter_steps : int;  (** Stuttering transitions counted over the space. *)
  simulated_steps : int;
  result : (unit, failure) result;
}

val ok : t -> bool

val check :
  ?within:(Guarded.State.t -> bool) ->
  abstract_env:Guarded.Env.t ->
  engine:Explore.Engine.t ->
  abstract_program:Guarded.Program.t ->
  concrete_program:Guarded.Program.t ->
  projection:(Guarded.Var.t * Guarded.Var.t) list ->
  abstract_invariant:(Guarded.State.t -> bool) ->
  concrete_invariant:(Guarded.State.t -> bool) ->
  unit ->
  t
(** [projection] maps each abstract variable to its concrete counterpart;
    every abstract variable must be covered.

    [within] (default: all states) restricts every check to concrete states
    satisfying it — a {e consistency relation}. A refinement that fails from
    arbitrary states often holds within a closed consistency relation; the
    caller should then separately check that [within] is closed under the
    concrete program ([Explore.Closure.program_closed]) and that the
    concrete program converges at all (its own convergence check), which
    together restore the convergence-preservation argument.
    @raise Invalid_argument if the projection misses an abstract variable
    or relates variables with different domains. *)

val pp : Format.formatter -> t -> unit
