(** Machine-checked validation of the paper's Theorems 1, 2, and 3.

    Each validator exhaustively discharges the theorem's antecedents over an
    enumerated state space and returns a {!Certify.t} listing every
    obligation. When the certificate is valid, the theorem guarantees that
    the augmented program [p ∪ q] is [T]-tolerant for [S]; experiment E5
    additionally checks the consequent directly with [Explore.Convergence].

    The obligations, for each layer [l] (Theorems 1 and 2 have one layer)
    with hypothesis [H_l = T ∧ (constraints of layers < l)]:

    - sanity: [S ⟹ T]; [T ∧ C ⟹ S] where [C] is the conjunction of all
      constraints;
    - candidate triple: every closure action preserves [S] and [T];
    - convergence-action form: each action preserves [T] and [S], is enabled
      only when its constraint is violated ([H_l ∧ enabled ⟹ ¬c]), is
      enabled whenever it is violated ([H_l ∧ ¬c ⟹ enabled]), and
      establishes it ([H_l ∧ enabled ⟹ c] in the post-state);
    - shape: the layer's constraint graph is an out-tree (Theorem 1) or
      self-looping (Theorems 2 and 3);
    - preservation: every closure action and every convergence action of a
      higher layer preserves each layer-[l] constraint under [H_l];
    - ordering (Theorems 2 and 3): for convergence actions sharing a target
      node, each action preserves the constraints of the actions preceding
      it in the pair list, under [H_l].

    {b The [modulo_invariant] refinement.} Read literally, Theorem 3's
    preservation antecedent fails for the paper's own token ring: the
    token-passing closure action violates the second-layer constraint
    [x.j = x.(j+1)] of its successor's successor. The paper's prose resolves
    this in two ways that we mechanize: (a) a closure action that is
    {e identical} to a convergence action of layer [≤ l] is exempt from the
    layer-[l] closure obligation — its executions are that convergence
    action's executions, which the rank induction already accounts for; and
    (b) with [~modulo_invariant:true], every hypothesis [H_l] gains the
    conjunct [¬S]: obligations need to hold only while the invariant has not
    yet been reached, which suffices for convergence to [S] because a
    computation that never reached [S] would satisfy all constraints after
    the layered induction, contradicting [T ∧ C ⟹ S]. Exemption (a) is
    always applied; (b) is opt-in and recorded in the certificate name. *)

val validate_theorem1 :
  engine:Explore.Engine.t -> spec:Spec.t -> cgraph:Cgraph.t -> Certify.t
(** Out-tree constraint graphs (Section 5). *)

val validate_theorem2 :
  engine:Explore.Engine.t -> spec:Spec.t -> cgraph:Cgraph.t -> Certify.t
(** Self-looping constraint graphs with per-node linear orderings
    (Section 6). The ordering checked is the order of the pair list. *)

val validate_theorem3 :
  ?modulo_invariant:bool ->
  engine:Explore.Engine.t ->
  spec:Spec.t ->
  Cgraph.t list ->
  Certify.t
(** Hierarchically partitioned convergence actions (Section 7); layer 0
    first. [modulo_invariant] defaults to [false]. *)

val augmented_program : Spec.t -> Cgraph.t list -> Guarded.Program.t
(** [p ∪ q]: the closure actions plus every convergence action that is not
    already (identically) a closure action. *)
