(** Variant functions synthesized from constraint-graph ranks.

    The paper's concluding remarks observe that its sufficient conditions
    simplify the search for a variant function. This module makes that
    concrete: from a constraint graph whose pairs have ranks [1..R], define

    [V(s) = (v_1, ..., v_R)] where [v_r] = number of violated constraints
    whose edge targets a node of rank [r],

    ordered lexicographically. Under the Theorem-1/2 obligations, every
    convergence action strictly decreases [V] (it establishes its own
    rank-[r] constraint and can only perturb higher ranks) and every closure
    action does not increase it — which is exactly a variant-function proof
    of convergence. [check] verifies both properties exhaustively. *)

type t

val of_cgraph : Cgraph.t -> t option
(** [None] when the graph is cyclic (no ranks). *)

val rank_count : t -> int

val value : t -> Guarded.State.t -> int array
(** Violations per rank; index [r-1] holds rank [r]. *)

val compare_values : int array -> int array -> int
(** Lexicographic. *)

val total_violations : t -> Guarded.State.t -> int

type failure = {
  action : string;
  pre : Guarded.State.t;
  post : Guarded.State.t;
  kind : [ `Convergence_did_not_decrease | `Closure_increased ];
}

val check :
  engine:Explore.Engine.t ->
  spec:Spec.t ->
  cgraph:Cgraph.t ->
  t ->
  (unit, failure) result
(** Exhaustively verify, over fault-span states: every convergence action
    strictly decreases [V]; every closure action does not increase it. *)

val pp_failure : Guarded.Env.t -> Format.formatter -> failure -> unit
