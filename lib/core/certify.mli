(** Validation certificates.

    A theorem validator discharges a list of obligations — closure of each
    constraint under each closure action, establishment checks, graph
    shapes, orderings, layer conditions — each exhaustively over an
    enumerated state space. The certificate records every obligation with
    its outcome, so a failed validation pinpoints the offending action,
    constraint and counterexample state. *)

type check = {
  label : string;  (** What was checked, human-readable. *)
  ok : bool;
  detail : string option;  (** Counterexample rendering when [not ok]. *)
}

type tolerance_summary = {
  span_states : int;  (** [|T|] *)
  span_roots : int;
  span_max_depth : int;  (** deepest fault layer actually reached *)
  convergence_worst : int option;
      (** exact worst-case recovery steps when the fault-free region is
          acyclic; [None] when convergence holds only under weak
          fairness or failed *)
}
(** Machine-readable digest of a {!tolerance} certification, for
    consumers (budget sweeps, reports) that would otherwise re-parse
    check labels. *)

type t = {
  theorem : string;  (** "Theorem 1" / "Theorem 2" / "Theorem 3". *)
  spec_name : string;
  shapes : (string * Dgraph.Classify.shape) list;
      (** Graph shape per layer (a single entry for Theorems 1 and 2). *)
  checks : check list;
  summary : tolerance_summary option;
      (** Present on {!tolerance} certificates; [None] for the theorem
          validators. *)
}

val ok : t -> bool
(** All checks passed. *)

val failures : t -> check list

val check_pass : string -> check
val check_fail : string -> detail:string -> check

val check_info : string -> detail:string -> check
(** A passing check that still carries a rendered witness — e.g. the
    recurring-fault livelock cycle of a {!tolerance} certificate, which
    does not invalidate nonmasking tolerance but must be shown. *)

val of_closure_result :
  Guarded.Env.t ->
  string ->
  (unit, Explore.Closure.violation) result ->
  check

val tolerance :
  engine:Explore.Engine.t ->
  program:Guarded.Program.t ->
  faults:Guarded.Action.t list ->
  ?envs:Guarded.Action.t list ->
  invariant:(Guarded.State.t -> bool) ->
  ?from:Explore.Engine.roots ->
  ?budget:int ->
  ?resume:Rt.Snapshot.t ->
  ?span:Explore.Faultspan.t ->
  ?require_recurrence_resilience:bool ->
  name:string ->
  unit ->
  t
(** Certify nonmasking [T]-tolerance (Section 3 of the paper) with a
    {e computed} fault span. The fault class is given as guarded actions
    (see [Sim.Fault.actions]); [T] is computed by {!Explore.Faultspan} as
    the closure of [from] (default: every invariant state) under program
    and fault actions, with at most [budget] fault steps per derivation
    ([None] = the unbounded recurring-fault span). The certificate
    discharges, exhaustively over the computed span:

    - {b span}: [T ⊇ S] with size and fault-depth accounting;
    - {b closure}: every program action (and, when unbudgeted, every fault
      action) maps [T] into [T] — re-verified independently of the span
      construction;
    - {b convergence}: every fault-free computation from [T] reaches [S]
      (the exact unfair check, falling back to the weak-fairness SCC
      criterion);
    - {b nonmasking tolerance}: the combination — faults occurring finitely
      often cannot prevent recovery;
    - {b recurrence}: a livelock detector over the combined program ∪ fault
      transition graph. A cycle outside [S] that contains a fault edge means
      recurring faults can perpetually disrupt recovery; it is rendered in
      the certificate as a concrete counterexample but — faults being
      environment actions, not program defects — reported as informational
      unless [require_recurrence_resilience] is set (default [false]).

    [envs] are environment actions (Roohitavaf–Kulkarni): uncontrollable
    like faults, but free and recurrent — they extend the span like
    program steps (never consuming [budget]), interleave with recovery
    (convergence and recurrence run over program ∪ environment), and may
    never be repaired through. Because the environment can fire at any
    time, a non-empty [envs] adds an {b environment closure} obligation:
    every environment action must map [S] into [S] — an environment step
    that breaks legitimacy fails the certificate outright.

    [span] supplies a precomputed fault span for {e exactly} this
    configuration (same engine, program, [envs], fault actions, [budget],
    and roots) and skips the span search — budget sweeps use it to
    certify without re-exploring. The caller is responsible for the
    match; a mismatched span yields a certificate about the wrong [T].

    The certification pipeline polls the engine's guard throughout: the
    span search at its chunk/wave boundaries, the closure scan every few
    thousand states, the convergence and recurrence phases through their
    internal region searches. A trip raises {!Explore.Engine.Interrupted};
    only an interruption {e during the span search} carries a resumable
    snapshot ([resume] feeds it back to {!Explore.Faultspan.compute}) —
    the later phases re-derive from the span, so their interrupts carry
    [None] and a resumed run repeats them.

    @raise Explore.Engine.Region_overflow when a lazy engine's budget is
    exceeded while computing the span (the recurring-fault analysis instead
    degrades to an informational "skipped" check on overflow).
    @raise Explore.Engine.Interrupted when the engine's guard trips. *)

val pp : Format.formatter -> t -> unit
(** Summary plus any failing checks in full. *)

val pp_full : Format.formatter -> t -> unit
(** Every check, passing or not; details (counterexamples, witnesses) are
    rendered whenever present. *)
