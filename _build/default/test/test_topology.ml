(* Tests for rooted trees and rings. *)

module Tree = Topology.Tree
module Ring = Topology.Ring

let sorted = List.sort compare

let test_chain () =
  let t = Tree.chain 4 in
  Alcotest.(check int) "size" 4 (Tree.size t);
  Alcotest.(check int) "root" 0 (Tree.root t);
  Alcotest.(check int) "parent of 3" 2 (Tree.parent t 3);
  Alcotest.(check int) "root is own parent" 0 (Tree.parent t 0);
  Alcotest.(check (list int)) "children of 1" [ 2 ] (Tree.children t 1);
  Alcotest.(check bool) "3 is leaf" true (Tree.is_leaf t 3);
  Alcotest.(check bool) "1 not leaf" false (Tree.is_leaf t 1);
  Alcotest.(check int) "depth of 3" 3 (Tree.depth t 3);
  Alcotest.(check int) "height" 3 (Tree.height t)

let test_star () =
  let t = Tree.star 5 in
  Alcotest.(check (list int)) "children of root" [ 1; 2; 3; 4 ]
    (sorted (Tree.children t 0));
  Alcotest.(check int) "height" 1 (Tree.height t);
  Alcotest.(check (list int)) "non-root nodes" [ 1; 2; 3; 4 ]
    (Tree.non_root_nodes t)

let test_balanced () =
  let t = Tree.balanced ~arity:2 7 in
  Alcotest.(check (list int)) "children of 0" [ 1; 2 ] (sorted (Tree.children t 0));
  Alcotest.(check (list int)) "children of 1" [ 3; 4 ] (sorted (Tree.children t 1));
  Alcotest.(check int) "height" 2 (Tree.height t);
  Alcotest.(check int) "parent of 6" 2 (Tree.parent t 6)

let test_single_node () =
  let t = Tree.chain 1 in
  Alcotest.(check bool) "root is leaf" true (Tree.is_leaf t 0);
  Alcotest.(check int) "height 0" 0 (Tree.height t)

let test_random_tree_valid () =
  let rng = Prng.create 7 in
  for _ = 1 to 20 do
    let n = 1 + Prng.int rng 30 in
    let t = Tree.random rng n in
    Alcotest.(check int) "size" n (Tree.size t);
    (* every non-root node has a parent with smaller index *)
    List.iter
      (fun j ->
        Alcotest.(check bool) "parent smaller" true (Tree.parent t j < j))
      (Tree.non_root_nodes t);
    (* depths consistent *)
    List.iter
      (fun j ->
        if not (Tree.is_root t j) then
          Alcotest.(check int) "depth = parent + 1"
            (Tree.depth t (Tree.parent t j) + 1)
            (Tree.depth t j))
      (Tree.nodes t)
  done

let test_of_parents_invalid () =
  Alcotest.(check bool) "no root" true
    (try
       ignore (Tree.of_parents [| 1; 0 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "two roots" true
    (try
       ignore (Tree.of_parents [| 0; 1 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cycle" true
    (try
       ignore (Tree.of_parents [| 0; 2; 1 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Tree.of_parents [| 0; 9 |]);
       false
     with Invalid_argument _ -> true)

let test_tree_to_digraph_is_out_tree () =
  let rng = Prng.create 11 in
  for _ = 1 to 10 do
    let t = Tree.random rng (2 + Prng.int rng 20) in
    let g = Tree.to_digraph t in
    Alcotest.(check bool) "out-tree" true (Dgraph.Classify.is_out_tree g)
  done

let test_ring_basics () =
  let r = Ring.create 5 in
  Alcotest.(check int) "size" 5 (Ring.size r);
  Alcotest.(check int) "succ" 0 (Ring.succ r 4);
  Alcotest.(check int) "pred" 4 (Ring.pred r 0);
  Alcotest.(check int) "distance fwd" 2 (Ring.distance r 4 1);
  Alcotest.(check int) "distance zero" 0 (Ring.distance r 3 3);
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3; 4 ] (Ring.nodes r)

let test_ring_too_small () =
  Alcotest.check_raises "size 1"
    (Invalid_argument "Ring.create: need at least 2 nodes") (fun () ->
      ignore (Ring.create 1))

let test_ring_digraph_cycle () =
  let r = Ring.create 4 in
  let g = Ring.to_digraph r in
  Alcotest.(check int) "edges" 4 (Dgraph.Digraph.edge_count g);
  Alcotest.(check bool) "cyclic" true
    (Dgraph.Classify.shape g = Dgraph.Classify.Cyclic)

let suite =
  [
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "balanced" `Quick test_balanced;
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "random trees valid" `Quick test_random_tree_valid;
    Alcotest.test_case "of_parents rejects junk" `Quick test_of_parents_invalid;
    Alcotest.test_case "tree digraph is out-tree" `Quick
      test_tree_to_digraph_is_out_tree;
    Alcotest.test_case "ring basics" `Quick test_ring_basics;
    Alcotest.test_case "ring too small" `Quick test_ring_too_small;
    Alcotest.test_case "ring digraph cyclic" `Quick test_ring_digraph_cycle;
  ]
