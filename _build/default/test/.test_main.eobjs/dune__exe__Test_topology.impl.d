test/test_topology.ml: Alcotest Dgraph List Prng Topology
