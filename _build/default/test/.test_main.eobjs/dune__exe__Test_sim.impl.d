test/test_sim.ml: Alcotest Array Fun Guarded List Prng Sim
