test/test_derive.ml: Alcotest Array Astring_contains Explore Format Guarded List Nonmask Protocols Topology
