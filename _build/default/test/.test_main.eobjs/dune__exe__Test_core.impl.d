test/test_core.ml: Alcotest Astring_contains Dgraph Explore Format Guarded List Nonmask
