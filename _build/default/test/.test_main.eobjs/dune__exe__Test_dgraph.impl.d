test/test_dgraph.ml: Alcotest Array Dgraph Fun List Printf String
