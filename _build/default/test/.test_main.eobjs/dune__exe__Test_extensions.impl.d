test/test_extensions.ml: Alcotest Array Explore Guarded List Printf Prng Protocols Sim Topology
