test/test_method.ml: Alcotest Array Astring_contains Explore Format Fun Guarded List Nonmask Prng Protocols Sim Topology
