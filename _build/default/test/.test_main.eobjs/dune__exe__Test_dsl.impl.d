test/test_dsl.ml: Alcotest Array Astring_contains Explore Format Guarded List Nonmask Option Prng Protocols String Topology
