test/test_properties.ml: Array Dgraph Explore Format Guarded Hashtbl List Nonmask Prng Protocols QCheck QCheck_alcotest Sim Topology
