test/test_protocols.ml: Alcotest Array Astring_contains Dgraph Explore Format Fun Guarded List Nonmask Printf Prng Protocols Sim Topology
