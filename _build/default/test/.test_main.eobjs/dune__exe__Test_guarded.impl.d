test/test_guarded.ml: Alcotest Array Guarded List Prng String
