test/test_explore.ml: Alcotest Array Dgraph Explore Guarded List
