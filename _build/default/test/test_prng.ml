(* Tests for the deterministic PRNG: reproducibility, bounds, distribution
   sanity, splitting, and sampling. *)

let test_reproducible () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_copy_independent () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  let xa = Prng.bits64 a in
  let xb = Prng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb

let test_split_diverges () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  Alcotest.(check bool) "split stream differs" true
    (Prng.bits64 a <> Prng.bits64 b)

let test_int_bounds () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.int g 7 in
    Alcotest.(check bool) "0 <= x < 7" true (0 <= x && x < 7)
  done

let test_int_rejects_nonpositive () =
  let g = Prng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_int_in_bounds () =
  let g = Prng.create 5 in
  for _ = 1 to 1000 do
    let x = Prng.int_in g (-3) 4 in
    Alcotest.(check bool) "-3 <= x <= 4" true (-3 <= x && x <= 4)
  done

let test_int_covers_all_values () =
  let g = Prng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int g 5) <- true
  done;
  Alcotest.(check bool) "all 5 values drawn" true (Array.for_all Fun.id seen)

let test_uniformity_rough () =
  let g = Prng.create 13 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Prng.int g 4 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "within 2% of uniform" true
        (abs_float (frac -. 0.25) < 0.02))
    counts

let test_float_bounds () =
  let g = Prng.create 17 in
  for _ = 1 to 1000 do
    let x = Prng.float g 2.5 in
    Alcotest.(check bool) "0 <= x < 2.5" true (0.0 <= x && x < 2.5)
  done

let test_bool_both () =
  let g = Prng.create 19 in
  let t = ref false and f = ref false in
  for _ = 1 to 100 do
    if Prng.bool g then t := true else f := true
  done;
  Alcotest.(check bool) "both outcomes" true (!t && !f)

let test_pick () =
  let g = Prng.create 23 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Prng.pick g a in
    Alcotest.(check bool) "member" true (Array.mem x a)
  done

let test_pick_empty () =
  let g = Prng.create 23 in
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick g [||]))

let test_shuffle_permutation () =
  let g = Prng.create 29 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_sample_without_replacement () =
  let g = Prng.create 31 in
  for _ = 1 to 50 do
    let s = Prng.sample_without_replacement g 5 12 in
    Alcotest.(check int) "size" 5 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    let distinct =
      Array.for_all Fun.id
        (Array.mapi (fun i x -> i = 0 || sorted.(i - 1) <> x) sorted)
    in
    Alcotest.(check bool) "distinct" true distinct;
    Array.iter
      (fun x -> Alcotest.(check bool) "in range" true (0 <= x && x < 12))
      s
  done

let test_sample_full () =
  let g = Prng.create 37 in
  let s = Prng.sample_without_replacement g 6 6 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "all of 0..5" (Array.init 6 Fun.id) sorted

let test_sample_invalid () =
  let g = Prng.create 41 in
  Alcotest.check_raises "k > n"
    (Invalid_argument "Prng.sample_without_replacement") (fun () ->
      ignore (Prng.sample_without_replacement g 7 6))

let suite =
  [
    Alcotest.test_case "reproducible" `Quick test_reproducible;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "copy continues stream" `Quick test_copy_independent;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects <=0" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int covers support" `Quick test_int_covers_all_values;
    Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "bool both outcomes" `Quick test_bool_both;
    Alcotest.test_case "pick members" `Quick test_pick;
    Alcotest.test_case "pick empty" `Quick test_pick_empty;
    Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick
      test_sample_without_replacement;
    Alcotest.test_case "sample full range" `Quick test_sample_full;
    Alcotest.test_case "sample invalid" `Quick test_sample_invalid;
  ]
