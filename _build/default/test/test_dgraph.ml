(* Tests for the directed-graph substrate: digraphs, SCC, topological
   structure, shape classification, and DOT export. *)

module Digraph = Dgraph.Digraph
module Scc = Dgraph.Scc
module Topo = Dgraph.Topo
module Classify = Dgraph.Classify

let sorted = List.sort compare

(* --- Digraph basics --- *)

let test_digraph_basics () =
  let g = Digraph.of_edges 4 [ (0, 1, "a"); (1, 2, "b"); (1, 3, "c") ] in
  Alcotest.(check int) "nodes" 4 (Digraph.node_count g);
  Alcotest.(check int) "edges" 3 (Digraph.edge_count g);
  Alcotest.(check (list int)) "succ 1" [ 2; 3 ] (sorted (Digraph.succ g 1));
  Alcotest.(check (list int)) "pred 1" [ 0 ] (Digraph.pred g 1);
  Alcotest.(check int) "out deg" 2 (Digraph.out_degree g 1);
  Alcotest.(check int) "in deg" 1 (Digraph.in_degree g 3);
  Alcotest.(check bool) "no self loop" false (Digraph.has_self_loop g 1)

let test_digraph_parallel_and_self () =
  let g = Digraph.of_edges 2 [ (0, 1, ()); (0, 1, ()); (1, 1, ()) ] in
  Alcotest.(check int) "parallel edges kept" 3 (Digraph.edge_count g);
  Alcotest.(check bool) "self loop" true (Digraph.has_self_loop g 1);
  let g' = Digraph.drop_self_loops g in
  Alcotest.(check int) "self loop dropped" 2 (Digraph.edge_count g')

let test_digraph_out_of_range () =
  let g = Digraph.create 2 in
  Alcotest.(check bool) "add rejects" true
    (try
       Digraph.add_edge g ~src:0 ~dst:5 ();
       false
     with Invalid_argument _ -> true)

let test_digraph_reverse () =
  let g = Digraph.of_edges 3 [ (0, 1, "e"); (1, 2, "f") ] in
  let r = Digraph.reverse g in
  Alcotest.(check (list int)) "reversed succ" [ 0 ] (Digraph.succ r 1);
  Alcotest.(check (list int)) "reversed pred" [ 2 ] (Digraph.pred r 1)

let test_digraph_filter_map () =
  let g = Digraph.of_edges 3 [ (0, 1, 10); (1, 2, 20) ] in
  let doubled = Digraph.map_labels (fun x -> x * 2) g in
  let labels =
    List.map (fun (e : _ Digraph.edge) -> e.label) (Digraph.edges doubled)
  in
  Alcotest.(check (list int)) "mapped" [ 20; 40 ] (sorted labels);
  let only_small = Digraph.filter_edges (fun e -> e.label < 15) g in
  Alcotest.(check int) "filtered" 1 (Digraph.edge_count only_small)

(* --- SCC --- *)

let test_scc_simple_cycle () =
  let g = Digraph.of_edges 3 [ (0, 1, ()); (1, 2, ()); (2, 0, ()) ] in
  let scc = Scc.compute g in
  Alcotest.(check int) "one component" 1 scc.Scc.count;
  Alcotest.(check (list int)) "members" [ 0; 1; 2 ]
    (sorted scc.Scc.members.(0))

let test_scc_dag () =
  let g = Digraph.of_edges 3 [ (0, 1, ()); (1, 2, ()) ] in
  let scc = Scc.compute g in
  Alcotest.(check int) "three components" 3 scc.Scc.count;
  (* topological numbering: edges go from lower to higher component id *)
  Alcotest.(check bool) "topo order" true
    (scc.Scc.component.(0) < scc.Scc.component.(1)
    && scc.Scc.component.(1) < scc.Scc.component.(2))

let test_scc_two_cycles () =
  let g =
    Digraph.of_edges 5
      [ (0, 1, ()); (1, 0, ()); (1, 2, ()); (2, 3, ()); (3, 2, ()); (4, 0, ()) ]
  in
  let scc = Scc.compute g in
  Alcotest.(check int) "three components" 3 scc.Scc.count;
  Alcotest.(check int) "0 and 1 together" scc.Scc.component.(0)
    scc.Scc.component.(1);
  Alcotest.(check int) "2 and 3 together" scc.Scc.component.(2)
    scc.Scc.component.(3);
  Alcotest.(check bool) "edge order respected" true
    (scc.Scc.component.(0) < scc.Scc.component.(2));
  Alcotest.(check bool) "4 before 0" true
    (scc.Scc.component.(4) < scc.Scc.component.(0))

let test_scc_trivial () =
  let g = Digraph.of_edges 2 [ (0, 0, ()); (0, 1, ()) ] in
  let scc = Scc.compute g in
  Alcotest.(check bool) "self loop not trivial" false (Scc.is_trivial scc g 0);
  Alcotest.(check bool) "isolated is trivial" true (Scc.is_trivial scc g 1)

let test_scc_condensation () =
  let g =
    Digraph.of_edges 4 [ (0, 1, ()); (1, 0, ()); (1, 2, ()); (2, 3, ()); (3, 2, ()) ]
  in
  let scc = Scc.compute g in
  let dag = Scc.condensation g scc in
  Alcotest.(check int) "two components" 2 (Digraph.node_count dag);
  Alcotest.(check int) "one cross edge" 1 (Digraph.edge_count dag);
  Alcotest.(check bool) "acyclic" true (Topo.is_acyclic dag)

let test_scc_big_path_no_stack_overflow () =
  let n = 100_000 in
  let g = Digraph.create n in
  for i = 0 to n - 2 do
    Digraph.add_edge g ~src:i ~dst:(i + 1) ()
  done;
  let scc = Scc.compute g in
  Alcotest.(check int) "all singletons" n scc.Scc.count

(* --- Topo --- *)

let test_topo_order () =
  let g = Digraph.of_edges 4 [ (0, 1, ()); (0, 2, ()); (1, 3, ()); (2, 3, ()) ] in
  match Topo.topological_order g with
  | None -> Alcotest.fail "expected acyclic"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      Alcotest.(check bool) "0 before 1" true (pos.(0) < pos.(1));
      Alcotest.(check bool) "1 before 3" true (pos.(1) < pos.(3));
      Alcotest.(check bool) "2 before 3" true (pos.(2) < pos.(3))

let test_topo_cyclic_none () =
  let g = Digraph.of_edges 2 [ (0, 1, ()); (1, 0, ()) ] in
  Alcotest.(check bool) "no order" true (Topo.topological_order g = None);
  Alcotest.(check bool) "not acyclic" false (Topo.is_acyclic g)

let test_topo_self_loop_counts_as_cycle () =
  let g = Digraph.of_edges 2 [ (0, 1, ()); (1, 1, ()) ] in
  Alcotest.(check bool) "self loop is a cycle" false (Topo.is_acyclic g);
  Alcotest.(check bool) "acyclic ignoring self loops" true
    (Topo.is_acyclic_ignoring_self_loops g)

let test_topo_ranks_paper () =
  (* The paper's rank: 1 + max over proper predecessors; sources rank 1. *)
  let g = Digraph.of_edges 4 [ (0, 1, ()); (1, 2, ()); (0, 3, ()) ] in
  match Topo.ranks g with
  | None -> Alcotest.fail "expected ranks"
  | Some r -> Alcotest.(check (array int)) "ranks" [| 1; 2; 3; 2 |] r

let test_topo_ranks_with_self_loops () =
  let g = Digraph.of_edges 3 [ (0, 1, ()); (1, 1, ()); (1, 2, ()) ] in
  match Topo.ranks g with
  | None -> Alcotest.fail "self loops should be ignored"
  | Some r -> Alcotest.(check (array int)) "ranks" [| 1; 2; 3 |] r

let test_topo_ranks_cyclic () =
  let g = Digraph.of_edges 2 [ (0, 1, ()); (1, 0, ()) ] in
  Alcotest.(check bool) "no ranks on cyclic" true (Topo.ranks g = None)

let test_topo_longest_paths () =
  let g = Digraph.of_edges 4 [ (0, 1, ()); (1, 2, ()); (0, 2, ()); (3, 0, ()) ] in
  match Topo.longest_path_lengths g with
  | None -> Alcotest.fail "acyclic"
  | Some d -> Alcotest.(check (array int)) "lengths" [| 1; 2; 3; 0 |] d

let test_find_cycle () =
  let g = Digraph.of_edges 4 [ (0, 1, ()); (1, 2, ()); (2, 1, ()); (2, 3, ()) ] in
  match Topo.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
      Alcotest.(check (list int)) "the 1-2 cycle" [ 1; 2 ] (sorted cycle);
      (* consecutive elements are edges, and last wraps to first *)
      let arr = Array.of_list cycle in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        let u = arr.(i) and v = arr.((i + 1) mod n) in
        Alcotest.(check bool) "edge exists" true (List.mem v (Digraph.succ g u))
      done

let test_find_cycle_self_loop () =
  let g = Digraph.of_edges 2 [ (0, 1, ()); (1, 1, ()) ] in
  Alcotest.(check bool) "singleton" true (Topo.find_cycle g = Some [ 1 ])

let test_find_cycle_none () =
  let g = Digraph.of_edges 3 [ (0, 1, ()); (1, 2, ()) ] in
  Alcotest.(check bool) "acyclic" true (Topo.find_cycle g = None)

(* --- Classification --- *)

let test_classify_out_tree () =
  let g = Digraph.of_edges 4 [ (0, 1, ()); (0, 2, ()); (1, 3, ()) ] in
  Alcotest.(check bool) "is out-tree" true (Classify.is_out_tree g);
  Alcotest.(check bool) "shape" true (Classify.shape g = Classify.Out_tree)

let test_classify_not_out_tree_two_roots () =
  let g = Digraph.of_edges 4 [ (0, 1, ()); (2, 3, ()) ] in
  Alcotest.(check bool) "disconnected" false (Classify.is_out_tree g);
  Alcotest.(check bool) "still self-looping class" true
    (Classify.shape g = Classify.Self_looping)

let test_classify_not_out_tree_indegree_two () =
  let g = Digraph.of_edges 3 [ (0, 2, ()); (1, 2, ()); (0, 1, ()) ] in
  Alcotest.(check bool) "diamond-ish" false (Classify.is_out_tree g);
  Alcotest.(check bool) "self-looping" true
    (Classify.shape g = Classify.Self_looping)

let test_classify_self_looping () =
  let g = Digraph.of_edges 3 [ (0, 1, ()); (1, 1, ()); (1, 2, ()) ] in
  Alcotest.(check bool) "self-looping" true (Classify.is_self_looping g);
  Alcotest.(check bool) "shape" true (Classify.shape g = Classify.Self_looping)

let test_classify_cyclic () =
  let g = Digraph.of_edges 3 [ (0, 1, ()); (1, 2, ()); (2, 0, ()) ] in
  Alcotest.(check bool) "shape" true (Classify.shape g = Classify.Cyclic)

let test_classify_single_node () =
  let g = Digraph.create 1 in
  Alcotest.(check bool) "single node is out-tree" true (Classify.is_out_tree g)

let test_classify_weak_connectivity () =
  let g = Digraph.of_edges 3 [ (0, 1, ()) ] in
  Alcotest.(check bool) "node 2 unreachable" false
    (Classify.is_weakly_connected g);
  let g2 = Digraph.of_edges 3 [ (0, 1, ()); (2, 1, ()) ] in
  Alcotest.(check bool) "weakly connected via 1" true
    (Classify.is_weakly_connected g2)

(* --- DOT --- *)

let test_dot_output () =
  let g = Digraph.of_edges 2 [ (0, 1, "e\"dge") ] in
  let dot =
    Dgraph.Dot.to_dot ~name:"t"
      ~node_label:(fun i -> Printf.sprintf "n%d" i)
      ~edge_label:Fun.id g
  in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "escaped quote" true
    (let rec contains i =
       i + 2 <= String.length dot
       && (String.sub dot i 2 = "\\\"" || contains (i + 1))
     in
     contains 0)

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
    Alcotest.test_case "parallel edges and self loops" `Quick
      test_digraph_parallel_and_self;
    Alcotest.test_case "out of range" `Quick test_digraph_out_of_range;
    Alcotest.test_case "reverse" `Quick test_digraph_reverse;
    Alcotest.test_case "filter and map" `Quick test_digraph_filter_map;
    Alcotest.test_case "scc simple cycle" `Quick test_scc_simple_cycle;
    Alcotest.test_case "scc dag" `Quick test_scc_dag;
    Alcotest.test_case "scc two cycles" `Quick test_scc_two_cycles;
    Alcotest.test_case "scc triviality" `Quick test_scc_trivial;
    Alcotest.test_case "scc condensation" `Quick test_scc_condensation;
    Alcotest.test_case "scc large path (iterative)" `Quick
      test_scc_big_path_no_stack_overflow;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "cyclic has no order" `Quick test_topo_cyclic_none;
    Alcotest.test_case "self loop is a cycle" `Quick
      test_topo_self_loop_counts_as_cycle;
    Alcotest.test_case "paper ranks" `Quick test_topo_ranks_paper;
    Alcotest.test_case "ranks ignore self loops" `Quick
      test_topo_ranks_with_self_loops;
    Alcotest.test_case "no ranks when cyclic" `Quick test_topo_ranks_cyclic;
    Alcotest.test_case "longest paths" `Quick test_topo_longest_paths;
    Alcotest.test_case "find cycle" `Quick test_find_cycle;
    Alcotest.test_case "find self loop" `Quick test_find_cycle_self_loop;
    Alcotest.test_case "find cycle none" `Quick test_find_cycle_none;
    Alcotest.test_case "classify out-tree" `Quick test_classify_out_tree;
    Alcotest.test_case "classify two roots" `Quick
      test_classify_not_out_tree_two_roots;
    Alcotest.test_case "classify indegree two" `Quick
      test_classify_not_out_tree_indegree_two;
    Alcotest.test_case "classify self-looping" `Quick test_classify_self_looping;
    Alcotest.test_case "classify cyclic" `Quick test_classify_cyclic;
    Alcotest.test_case "classify single node" `Quick test_classify_single_node;
    Alcotest.test_case "weak connectivity" `Quick test_classify_weak_connectivity;
    Alcotest.test_case "dot export" `Quick test_dot_output;
  ]
