(* Tests for the guarded-command substrate: domains, environments, states,
   expressions, actions, programs, and the compiler. *)

module Domain = Guarded.Domain
module Env = Guarded.Env
module Var = Guarded.Var
module State = Guarded.State
module Expr = Guarded.Expr
module Action = Guarded.Action
module Program = Guarded.Program
module Compile = Guarded.Compile

(* --- Domains --- *)

let test_domain_sizes () =
  Alcotest.(check int) "bool" 2 (Domain.size Domain.bool);
  Alcotest.(check int) "range" 5 (Domain.size (Domain.range (-2) 2));
  Alcotest.(check int) "enum" 3
    (Domain.size (Domain.enum "color" [ "r"; "g"; "b" ]))

let test_domain_mem () =
  let d = Domain.range 1 4 in
  Alcotest.(check bool) "lo" true (Domain.mem d 1);
  Alcotest.(check bool) "hi" true (Domain.mem d 4);
  Alcotest.(check bool) "below" false (Domain.mem d 0);
  Alcotest.(check bool) "above" false (Domain.mem d 5);
  Alcotest.(check bool) "bool 2" false (Domain.mem Domain.bool 2)

let test_domain_values () =
  Alcotest.(check (list int)) "range values" [ 2; 3; 4 ]
    (Domain.values (Domain.range 2 4));
  Alcotest.(check (list int)) "enum values" [ 0; 1 ]
    (Domain.values (Domain.enum "e" [ "a"; "b" ]))

let test_domain_print () =
  let d = Domain.enum "color" [ "green"; "red" ] in
  Alcotest.(check string) "label" "red" (Domain.value_to_string d 1);
  Alcotest.(check string) "corrupt" "<9!>" (Domain.value_to_string d 9);
  Alcotest.(check string) "bool" "true" (Domain.value_to_string Domain.bool 1)

let test_domain_invalid () =
  Alcotest.check_raises "range" (Invalid_argument "Domain.range: hi < lo")
    (fun () -> ignore (Domain.range 3 2));
  Alcotest.check_raises "enum" (Invalid_argument "Domain.enum: no labels")
    (fun () -> ignore (Domain.enum "e" []))

(* --- Env and State --- *)

let test_env_fresh () =
  let env = Env.create () in
  let a = Env.fresh env "a" Domain.bool in
  let b = Env.fresh env "b" (Domain.range 0 3) in
  Alcotest.(check int) "indices dense" 0 (Var.index a);
  Alcotest.(check int) "indices dense" 1 (Var.index b);
  Alcotest.(check int) "count" 2 (Env.var_count env);
  Alcotest.(check bool) "lookup" true (Env.lookup env "a" = Some a);
  Alcotest.(check bool) "lookup none" true (Env.lookup env "zz" = None)

let test_env_duplicate () =
  let env = Env.create () in
  ignore (Env.fresh env "a" Domain.bool);
  Alcotest.check_raises "dup"
    (Invalid_argument "Env.fresh: duplicate variable \"a\"") (fun () ->
      ignore (Env.fresh env "a" Domain.bool))

let test_env_family () =
  let env = Env.create () in
  let xs = Env.fresh_family env "x" 3 (Domain.range 0 1) in
  Alcotest.(check int) "three" 3 (Array.length xs);
  Alcotest.(check string) "names" "x.1" (Var.name xs.(1));
  Alcotest.(check bool) "var_at" true (Var.equal (Env.var_at env 2) xs.(2))

let test_env_space_size () =
  let env = Env.create () in
  ignore (Env.fresh_family env "x" 3 (Domain.range 0 4));
  Alcotest.(check (float 0.001)) "5^3" 125.0 (Env.state_space_size env)

let test_state_get_set () =
  let env = Env.create () in
  let a = Env.fresh env "a" (Domain.range 0 9) in
  let s = State.make env in
  Alcotest.(check int) "initial is first of domain" 0 (State.get s a);
  State.set s a 7;
  Alcotest.(check int) "after set" 7 (State.get s a)

let test_state_domain_violation () =
  let env = Env.create () in
  let a = Env.fresh env "a" (Domain.range 0 2) in
  let s = State.make env in
  (try
     State.set s a 5;
     Alcotest.fail "expected Domain_violation"
   with State.Domain_violation (v, x) ->
     Alcotest.(check string) "var" "a" (Var.name v);
     Alcotest.(check int) "value" 5 x);
  State.set_corrupt s a 5;
  Alcotest.(check int) "corrupt write bypasses check" 5 (State.get s a);
  Alcotest.(check bool) "in_domain false" false (State.in_domain env s)

let test_state_copy_equal () =
  let env = Env.create () in
  let a = Env.fresh env "a" (Domain.range 0 9) in
  let b = Env.fresh env "b" (Domain.range 0 9) in
  let s = State.of_list env [ (a, 3); (b, 4) ] in
  let s' = State.copy s in
  Alcotest.(check bool) "equal copies" true (State.equal s s');
  State.set s' b 5;
  Alcotest.(check bool) "diverge" false (State.equal s s');
  Alcotest.(check int) "original untouched" 4 (State.get s b)

let test_state_init_nonfirst_domain () =
  let env = Env.create () in
  let a = Env.fresh env "a" (Domain.range 5 8) in
  let s = State.make env in
  Alcotest.(check int) "first of 5..8" 5 (State.get s a)

let test_state_pp () =
  let env = Env.create () in
  let a = Env.fresh env "a" Domain.bool in
  let c = Env.fresh env "c" (Domain.enum "color" [ "green"; "red" ]) in
  let s = State.of_list env [ (a, 1); (c, 0) ] in
  Alcotest.(check string) "render" "{a=true, c=green}" (State.to_string env s)

(* --- Expressions --- *)

let with_xyz () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range (-10) 10) in
  let y = Env.fresh env "y" (Domain.range (-10) 10) in
  let z = Env.fresh env "z" (Domain.range (-10) 10) in
  (env, x, y, z)

let test_expr_eval_arith () =
  let env, x, y, _ = with_xyz () in
  let s = State.of_list env [ (x, 6); (y, 4) ] in
  let open Expr in
  Alcotest.(check int) "add" 10 (eval_num s (var x + var y));
  Alcotest.(check int) "sub" 2 (eval_num s (var x - var y));
  Alcotest.(check int) "mul" 24 (eval_num s (var x * var y));
  Alcotest.(check int) "div" 1 (eval_num s (var x / var y));
  Alcotest.(check int) "mod" 2 (eval_num s (var x mod var y));
  Alcotest.(check int) "min" 4 (eval_num s (min_ (var x) (var y)));
  Alcotest.(check int) "max" 6 (eval_num s (max_ (var x) (var y)));
  Alcotest.(check int) "neg" (-6) (eval_num s (neg (var x)));
  Alcotest.(check int) "ite" 6
    (eval_num s (ite (var x > var y) (var x) (var y)))

let test_expr_eval_bool () =
  let env, x, y, _ = with_xyz () in
  let s = State.of_list env [ (x, 2); (y, 2) ] in
  let open Expr in
  Alcotest.(check bool) "eq" true (eval s (var x = var y));
  Alcotest.(check bool) "ne" false (eval s (var x <> var y));
  Alcotest.(check bool) "le" true (eval s (var x <= var y));
  Alcotest.(check bool) "lt" false (eval s (var x < var y));
  Alcotest.(check bool) "and" true (eval s (tt && var x = var y));
  Alcotest.(check bool) "or" true (eval s (ff || tt));
  Alcotest.(check bool) "implies false antecedent" true (eval s (ff ==> ff));
  Alcotest.(check bool) "implies" false (eval s (tt ==> ff));
  Alcotest.(check bool) "iff" true (eval s (ff <=> ff));
  Alcotest.(check bool) "not" false (eval s (not_ tt))

let test_expr_quantifiers () =
  let env = Env.create () in
  let xs = Env.fresh_family env "x" 4 (Domain.range 0 9) in
  let s = State.of_list env (List.init 4 (fun i -> (xs.(i), i))) in
  let open Expr in
  Alcotest.(check bool) "forall" true
    (eval s (forall [ 0; 1; 2; 3 ] (fun i -> var xs.(i) <= int 3)));
  Alcotest.(check bool) "forall fails" false
    (eval s (forall [ 0; 1; 2; 3 ] (fun i -> var xs.(i) <= int 2)));
  Alcotest.(check bool) "exists" true
    (eval s (exists [ 0; 1; 2; 3 ] (fun i -> var xs.(i) = int 3)));
  Alcotest.(check bool) "empty forall is true" true (eval s (forall [] (fun _ -> ff)));
  Alcotest.(check bool) "empty exists is false" false
    (eval s (exists [] (fun _ -> tt)))

let test_expr_reads () =
  let _, x, y, z = with_xyz () in
  let open Expr in
  let e = ite (var x > int 0) (var y) (int 3) in
  let names set =
    Var.Set.elements set |> List.map Var.name |> List.sort compare
  in
  Alcotest.(check (list string)) "num reads" [ "x"; "y" ] (names (reads_num e));
  let b = var x = var z && not_ (var y < int 2) in
  Alcotest.(check (list string)) "bool reads" [ "x"; "y"; "z" ] (names (reads b))

let test_expr_simplify () =
  let _, x, _, _ = with_xyz () in
  let open Expr in
  Alcotest.(check bool) "const fold" true
    (equal_num (simplify_num (int 2 + int 3)) (int 5));
  Alcotest.(check bool) "x+0" true (equal_num (simplify_num (var x + int 0)) (var x));
  Alcotest.(check bool) "x*1" true (equal_num (simplify_num (var x * int 1)) (var x));
  Alcotest.(check bool) "x*0" true (equal_num (simplify_num (var x * int 0)) (int 0));
  Alcotest.(check bool) "true && p" true
    (equal (simplify (tt && var x = int 1)) (var x = int 1));
  Alcotest.(check bool) "p || true" true (equal (simplify (var x = int 1 || tt)) tt);
  Alcotest.(check bool) "1 < 2" true (equal (simplify (int 1 < int 2)) tt);
  Alcotest.(check bool) "double neg" true
    (equal (simplify (not_ (not_ (var x = int 1)))) (var x = int 1))

let test_expr_subst () =
  let _, x, y, _ = with_xyz () in
  let open Expr in
  let e = var x + var y in
  let e' = subst_num (fun v -> if Var.equal v x then Some (int 5) else None) e in
  Alcotest.(check bool) "substituted" true (equal_num e' (int 5 + var y))

let test_expr_pp_roundtrip_shape () =
  let _, x, y, z = with_xyz () in
  let open Expr in
  Alcotest.(check string) "precedence" "x + y * z"
    (num_to_string (var x + (var y * var z)));
  Alcotest.(check string) "parens" "(x + y) * z"
    (num_to_string ((var x + var y) * var z));
  Alcotest.(check string) "cmp" "x <= z" (to_string (var x <= var z));
  Alcotest.(check string) "and-or" "x = 1 /\\ y = 2 \\/ z = 3"
    (to_string (var x = int 1 && var y = int 2 || var z = int 3))

(* --- Actions and programs --- *)

let mk_incr x =
  let open Expr in
  Action.make ~name:"incr" ~guard:(var x < int 3) [ (x, var x + int 1) ]

let test_action_enabled_execute () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let a = mk_incr x in
  let s = State.of_list env [ (x, 2) ] in
  Alcotest.(check bool) "enabled" true (Action.enabled a s);
  let s' = Action.execute a s in
  Alcotest.(check int) "post" 3 (State.get s' x);
  Alcotest.(check int) "pre untouched" 2 (State.get s x);
  Alcotest.(check bool) "disabled at 3" false (Action.enabled a s')

let test_action_simultaneous () =
  (* swap uses the pre-state for every right-hand side *)
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 9) in
  let y = Env.fresh env "y" (Domain.range 0 9) in
  let open Expr in
  let swap = Action.make ~name:"swap" ~guard:tt [ (x, var y); (y, var x) ] in
  let s = State.of_list env [ (x, 1); (y, 2) ] in
  let s' = Action.execute swap s in
  Alcotest.(check int) "x" 2 (State.get s' x);
  Alcotest.(check int) "y" 1 (State.get s' y)

let test_action_duplicate_target () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 9) in
  let open Expr in
  Alcotest.check_raises "dup"
    (Invalid_argument "Action.make \"bad\": duplicate assignment to x")
    (fun () ->
      ignore (Action.make ~name:"bad" ~guard:tt [ (x, int 1); (x, int 2) ]))

let test_action_reads_writes () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 9) in
  let y = Env.fresh env "y" (Domain.range 0 9) in
  let z = Env.fresh env "z" (Domain.range 0 9) in
  let open Expr in
  let a = Action.make ~name:"a" ~guard:(var x > int 0) [ (y, var z) ] in
  let names set = Var.Set.elements set |> List.map Var.name in
  Alcotest.(check (list string)) "reads" [ "x"; "z" ] (names (Action.reads a));
  Alcotest.(check (list string)) "writes" [ "y" ] (names (Action.writes a))

let test_action_interferes () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 9) in
  let y = Env.fresh env "y" (Domain.range 0 9) in
  let z = Env.fresh env "z" (Domain.range 0 9) in
  let open Expr in
  let a = Action.make ~name:"a" ~guard:tt [ (x, int 1) ] in
  let b = Action.make ~name:"b" ~guard:(var x > int 0) [ (y, int 1) ] in
  let c = Action.make ~name:"c" ~guard:tt [ (z, int 1) ] in
  Alcotest.(check bool) "write-read conflict" true (Action.interferes a b);
  Alcotest.(check bool) "disjoint" false (Action.interferes a c)

let test_action_domain_escape () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let open Expr in
  let bad = Action.make ~name:"bad" ~guard:tt [ (x, var x + int 1) ] in
  let s = State.of_list env [ (x, 3) ] in
  Alcotest.(check bool) "raises"
    true
    (try
       ignore (Action.execute bad s);
       false
     with State.Domain_violation _ -> true)

let test_program_make_and_enabled () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let up =
    Expr.(Action.make ~name:"up" ~guard:(var x < int 3) [ (x, var x + int 1) ])
  in
  let down =
    Expr.(Action.make ~name:"down" ~guard:(var x > int 0) [ (x, var x - int 1) ])
  in
  let p = Program.make ~name:"updown" env [ up; down ] in
  let s = State.of_list env [ (x, 0) ] in
  Alcotest.(check int) "one enabled" 1 (List.length (Program.enabled p s));
  Alcotest.(check (list int)) "indices" [ 0 ] (Program.enabled_indices p s);
  Alcotest.(check bool) "not terminal" false (Program.is_terminal p s);
  Alcotest.(check bool) "find" true (Program.find_action p "up" <> None);
  Alcotest.(check bool) "find missing" true (Program.find_action p "zz" = None)

let test_program_duplicate_action () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let open Expr in
  let a = Action.make ~name:"a" ~guard:tt [ (x, int 1) ] in
  Alcotest.check_raises "dup"
    (Invalid_argument "Program.make: duplicate action \"a\"") (fun () ->
      ignore (Program.make ~name:"p" env [ a; a ]))

let test_program_foreign_variable () =
  let env1 = Env.create () in
  let env2 = Env.create () in
  let x = Env.fresh env1 "x" (Domain.range 0 3) in
  ignore (Env.fresh env2 "y" Domain.bool);
  let open Expr in
  let a = Action.make ~name:"a" ~guard:tt [ (x, int 1) ] in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Program.make ~name:"p" env2 [ a ]);
       false
     with Invalid_argument _ -> true)

let test_program_terminal () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let open Expr in
  let a = Action.make ~name:"a" ~guard:(var x < int 0) [ (x, int 0) ] in
  let p = Program.make ~name:"p" env [ a ] in
  Alcotest.(check bool) "terminal" true (Program.is_terminal p (State.make env))

let test_program_restrict_add () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let a = Expr.(Action.make ~name:"a" ~guard:tt [ (x, int 1) ]) in
  let b = Expr.(Action.make ~name:"b" ~guard:tt [ (x, int 2) ]) in
  let p = Program.make ~name:"p" env [ a ] in
  let p2 = Program.add_actions p [ b ] in
  Alcotest.(check int) "added" 2 (Program.action_count p2);
  let p3 = Program.restrict p2 (fun act -> String.equal (Action.name act) "b") in
  Alcotest.(check int) "restricted" 1 (Program.action_count p3)

(* --- Compile --- *)

let test_compile_agrees_with_interpreter () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range (-4) 4) in
  let y = Env.fresh env "y" (Domain.range (-4) 4) in
  let open Expr in
  let exprs =
    [
      var x + var y * int 2;
      max_ (var x) (neg (var y));
      ite (var x >= var y) (var x - var y) (var y - var x);
    ]
  in
  let preds =
    [
      var x = var y;
      var x < var y && not_ (var y = int 0);
      (var x > int 0) ==> (var y > int 0);
    ]
  in
  let rng = Prng.create 5 in
  for _ = 1 to 200 do
    let s =
      State.of_list env
        [ (x, Prng.int_in rng (-4) 4); (y, Prng.int_in rng (-4) 4) ]
    in
    List.iter
      (fun e ->
        Alcotest.(check int) "num agree" (eval_num s e) (Compile.num e s))
      exprs;
    List.iter
      (fun p ->
        Alcotest.(check bool) "pred agree" (eval s p) (Compile.pred p s))
      preds
  done

let test_compile_action_agrees () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 5) in
  let y = Env.fresh env "y" (Domain.range 0 5) in
  let open Expr in
  let a =
    Action.make ~name:"a"
      ~guard:(var x < var y)
      [ (x, var x + int 1); (y, var y - int 1) ]
  in
  let ca = Compile.action ~index:0 a in
  let rng = Prng.create 8 in
  for _ = 1 to 100 do
    let s =
      State.of_list env [ (x, Prng.int rng 6); (y, Prng.int rng 6) ]
    in
    Alcotest.(check bool) "enabled agree" (Action.enabled a s) (ca.Compile.enabled s);
    if Action.enabled a s then begin
      let via_interp = Action.execute a s in
      let via_compiled = ca.Compile.apply s in
      Alcotest.(check bool) "post agree" true (State.equal via_interp via_compiled);
      let dst = State.make env in
      ca.Compile.apply_into s dst;
      Alcotest.(check bool) "apply_into agree" true (State.equal via_interp dst)
    end
  done

let test_compile_program_enabled_indices () =
  let env = Env.create () in
  let x = Env.fresh env "x" (Domain.range 0 3) in
  let open Expr in
  let up = Action.make ~name:"up" ~guard:(var x < int 3) [ (x, var x + int 1) ] in
  let down = Action.make ~name:"down" ~guard:(var x > int 0) [ (x, var x - int 1) ] in
  let p = Program.make ~name:"p" env [ up; down ] in
  let cp = Compile.program p in
  let s = State.of_list env [ (x, 1) ] in
  Alcotest.(check (list int)) "both" [ 0; 1 ] (Compile.enabled_indices cp s);
  Alcotest.(check bool) "any" true (Compile.any_enabled cp s)

let suite =
  [
    Alcotest.test_case "domain sizes" `Quick test_domain_sizes;
    Alcotest.test_case "domain mem" `Quick test_domain_mem;
    Alcotest.test_case "domain values" `Quick test_domain_values;
    Alcotest.test_case "domain printing" `Quick test_domain_print;
    Alcotest.test_case "domain invalid" `Quick test_domain_invalid;
    Alcotest.test_case "env fresh/lookup" `Quick test_env_fresh;
    Alcotest.test_case "env duplicate" `Quick test_env_duplicate;
    Alcotest.test_case "env family" `Quick test_env_family;
    Alcotest.test_case "env space size" `Quick test_env_space_size;
    Alcotest.test_case "state get/set" `Quick test_state_get_set;
    Alcotest.test_case "state domain violation" `Quick test_state_domain_violation;
    Alcotest.test_case "state copy/equal" `Quick test_state_copy_equal;
    Alcotest.test_case "state nonzero domain base" `Quick test_state_init_nonfirst_domain;
    Alcotest.test_case "state printing" `Quick test_state_pp;
    Alcotest.test_case "expr arithmetic" `Quick test_expr_eval_arith;
    Alcotest.test_case "expr booleans" `Quick test_expr_eval_bool;
    Alcotest.test_case "expr quantifiers" `Quick test_expr_quantifiers;
    Alcotest.test_case "expr read sets" `Quick test_expr_reads;
    Alcotest.test_case "expr simplify" `Quick test_expr_simplify;
    Alcotest.test_case "expr substitution" `Quick test_expr_subst;
    Alcotest.test_case "expr printing" `Quick test_expr_pp_roundtrip_shape;
    Alcotest.test_case "action enabled/execute" `Quick test_action_enabled_execute;
    Alcotest.test_case "action simultaneous assignment" `Quick test_action_simultaneous;
    Alcotest.test_case "action duplicate target" `Quick test_action_duplicate_target;
    Alcotest.test_case "action read/write sets" `Quick test_action_reads_writes;
    Alcotest.test_case "action interference" `Quick test_action_interferes;
    Alcotest.test_case "action domain escape" `Quick test_action_domain_escape;
    Alcotest.test_case "program make/enabled" `Quick test_program_make_and_enabled;
    Alcotest.test_case "program duplicate action" `Quick test_program_duplicate_action;
    Alcotest.test_case "program foreign variable" `Quick test_program_foreign_variable;
    Alcotest.test_case "program terminal" `Quick test_program_terminal;
    Alcotest.test_case "program restrict/add" `Quick test_program_restrict_add;
    Alcotest.test_case "compile agrees with interpreter" `Quick
      test_compile_agrees_with_interpreter;
    Alcotest.test_case "compiled actions agree" `Quick test_compile_action_agrees;
    Alcotest.test_case "compiled program enabled" `Quick
      test_compile_program_enabled_indices;
  ]
