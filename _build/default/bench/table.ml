(* Fixed-width text tables for the experiment harness. *)

let print ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row c)))
      0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render row = String.concat "  " (List.map2 pad row widths) in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (render header);
  Printf.printf "%s\n"
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows;
  print_newline ()

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i = string_of_int
