bench/main.ml: Analyze Array Bechamel Benchmark Dgraph Explore Format Guarded Hashtbl List Measure Nonmask Printf Prng Protocols Sim Staged String Sys Table Test Time Toolkit Topology
