bench/table.ml: List Printf String
