bench/main.mli:
