examples/quickstart.ml: Explore Format Guarded Nonmask Prng Sim
