examples/atomic_actions_demo.mli:
