examples/spanning_tree_demo.ml: Format Fun Guarded List Prng Protocols Sim Topology
