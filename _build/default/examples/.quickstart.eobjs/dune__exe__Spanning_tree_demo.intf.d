examples/spanning_tree_demo.mli:
