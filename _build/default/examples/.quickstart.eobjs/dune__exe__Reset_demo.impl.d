examples/reset_demo.ml: Format Guarded List Printf Prng Protocols Sim Topology
