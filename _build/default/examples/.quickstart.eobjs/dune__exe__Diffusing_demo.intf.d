examples/diffusing_demo.mli:
