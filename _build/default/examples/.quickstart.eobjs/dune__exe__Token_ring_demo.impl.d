examples/token_ring_demo.ml: Explore Format Guarded List Nonmask Prng Protocols Sim Topology
