examples/quickstart.mli:
