examples/diffusing_demo.ml: Explore Format Guarded List Nonmask Prng Protocols Sim Topology
