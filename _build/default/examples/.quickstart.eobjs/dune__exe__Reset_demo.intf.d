examples/reset_demo.mli:
