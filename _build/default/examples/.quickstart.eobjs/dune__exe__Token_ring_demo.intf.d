examples/token_ring_demo.mli:
