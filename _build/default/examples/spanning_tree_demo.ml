(* Stabilizing BFS spanning-tree construction on a general network — an
   application beyond the paper's theorem classes, validated by the
   exhaustive checker (see EXPERIMENTS.md, E11).

   Run with: dune exec examples/spanning_tree_demo.exe *)

module Ugraph = Topology.Ugraph
module State = Guarded.State
module St = Protocols.Spanning_tree

let pp_dists st ppf s =
  List.iter
    (fun j -> Format.fprintf ppf "%d " (State.get s (St.distance st j)))
    (List.init (Ugraph.size (St.graph st)) Fun.id)

let () =
  let g = Ugraph.grid ~width:3 ~height:3 in
  let st = St.make ~root:0 g in
  let env = St.env st in
  Format.printf "Network: 3x3 grid, root at the corner.@.%a@." Ugraph.pp g;
  Format.printf "Program:@.%a@.@." Guarded.Program.pp (St.program st);

  (* The legitimate state is the BFS fixpoint; the derived parent pointers
     form a spanning tree. *)
  let legit = St.bfs_state st in
  Format.printf "BFS distances: %a@." (pp_dists st) legit;
  Format.printf "Derived spanning tree (parent -> child):@.";
  List.iter
    (fun (p, c) -> Format.printf "  %d -> %d@." p c)
    (St.tree_edges st legit);

  (* Scramble everything and watch the distances heal. *)
  let rng = Prng.create 14 in
  let init = St.bfs_state st in
  (Sim.Fault.scramble env).Sim.Fault.inject rng init;
  Format.printf "@.Scrambled: %a (%d local constraints violated)@."
    (pp_dists st) init (St.violated st init);
  let cp = Guarded.Compile.program (St.program st) in
  let outcome =
    Sim.Runner.run ~record_trace:true
      ~daemon:(Sim.Daemon.random rng)
      ~init
      ~stop:(fun s -> St.invariant st s)
      cp
  in
  (match outcome.Sim.Runner.trace with
  | Some t ->
      List.iteri
        (fun i s ->
          Format.printf "  %2d: %a (%d violated)@." i (pp_dists st) s
            (St.violated st s))
        (Sim.Trace.states t)
  | None -> ());
  Format.printf "Tree rebuilt in %d steps.@." outcome.Sim.Runner.steps;

  (* Statistics across topologies. *)
  Format.printf "@.Recovery from scramble, 300 trials each:@.";
  List.iter
    (fun (name, g) ->
      let st = St.make ~root:0 g in
      let cp = Guarded.Compile.program (St.program st) in
      let fault = Sim.Fault.scramble (St.env st) in
      let result =
        Sim.Experiment.convergence_trials ~rng:(Prng.create 99) ~trials:300
          ~daemon:(fun r -> Sim.Daemon.random r)
          ~prepare:(fun r ->
            let s = St.bfs_state st in
            fault.Sim.Fault.inject r s;
            s)
          ~stop:(fun s -> St.invariant st s)
          cp
      in
      Format.printf "  %-12s %a@." name Sim.Experiment.pp_result result)
    [
      ("path-16", Ugraph.path 16);
      ("cycle-16", Ugraph.cycle 16);
      ("grid-4x4", Ugraph.grid ~width:4 ~height:4);
      ("random-16", Ugraph.random_connected (Prng.create 4) 16 ~extra_edges:8);
    ]
