(* Distributed reset — the application the paper's diffusing computation
   was simplified from (its citation [12]): a red wave that atomically
   clears each process's application state as it passes, self-stabilizing
   against corruption of the wave machinery itself.

   Run with: dune exec examples/reset_demo.exe *)

module Tree = Topology.Tree
module State = Guarded.State
module Reset = Protocols.Reset

let pp_node r s j =
  let c = State.get s (Reset.color r j) in
  let a = State.get s (Reset.app r j) in
  Printf.sprintf "%s%d" (if c = Protocols.Diffusing.red then "R" else "g") a

let pp_state r ppf s =
  List.iter
    (fun j -> Format.fprintf ppf "%s " (pp_node r s j))
    (Tree.nodes (Reset.tree r))

let () =
  let tree = Tree.balanced ~arity:2 7 in
  let r = Reset.make tree in
  let cp = Guarded.Compile.program (Reset.program r) in
  Format.printf
    "Distributed reset on a 7-node binary tree. Display: color (g/R) and \
     application counter per node.@.@.";

  (* Let the application drift, then watch one reset wave clear it. *)
  let init = Reset.all_green r in
  List.iter (fun j -> State.set init (Reset.app r j) 2) (Tree.nodes tree);
  Format.printf "Application state drifted: %a@." (pp_state r) init;
  let root = Tree.root tree in
  let sn0 = State.get init (Reset.session r root) in
  let daemon = Sim.Daemon.round_robin () in
  let state = ref init in
  let steps = ref 0 in
  let wave_done s =
    State.get s (Reset.color r root) = Protocols.Diffusing.green
    && State.get s (Reset.session r root) <> sn0
  in
  while (not (wave_done !state)) && !steps < 100 do
    Format.printf "  %2d: %a@." !steps (pp_state r) !state;
    let o =
      Sim.Runner.run ~max_steps:1 ~daemon ~init:!state ~stop:(fun _ -> false)
        cp
    in
    state := o.Sim.Runner.final;
    incr steps
  done;
  Format.printf "  %2d: %a  <- wave complete, every process was reset@."
    !steps (pp_state r) !state;

  (* The guarantee survives corruption of the machinery. *)
  let rng = Prng.create 8 in
  let fault = Sim.Fault.scramble (Reset.env r) in
  let trials = 1000 in
  let ok = ref 0 in
  for _ = 1 to trials do
    let init = Reset.all_green r in
    fault.Sim.Fault.inject rng init;
    let o =
      Sim.Runner.run
        ~daemon:(Sim.Daemon.random rng)
        ~init
        ~stop:(fun s -> Reset.invariant r s)
        cp
    in
    if Sim.Runner.converged o then incr ok
  done;
  Format.printf
    "@.%d/%d scrambled starts re-stabilized the wave machinery.@." !ok trials
