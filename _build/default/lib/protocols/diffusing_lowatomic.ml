module Expr = Guarded.Expr
module Action = Guarded.Action
module Domain = Guarded.Domain
module Tree = Topology.Tree

type t = {
  tree : Tree.t;
  env : Guarded.Env.t;
  color : Guarded.Var.t array;
  session : Guarded.Var.t array;
  pointer : Guarded.Var.t option array;
  program : Guarded.Program.t;
  invariant : Guarded.State.t -> bool;
  violated_preds : (Guarded.State.t -> bool) list;
}

let green = Diffusing.green
let red = Diffusing.red

let make tree =
  let n = Tree.size tree in
  let env = Guarded.Env.create () in
  let color =
    Guarded.Env.fresh_family env "c" n (Domain.enum "color" [ "green"; "red" ])
  in
  let session = Guarded.Env.fresh_family env "sn" n Domain.bool in
  let pointer =
    Array.init n (fun j ->
        let deg = List.length (Tree.children tree j) in
        if deg = 0 then None
        else
          Some
            (Guarded.Env.fresh env
               (Printf.sprintf "ptr.%d" j)
               (Domain.range 0 deg)))
  in
  let root = Tree.root tree in
  let non_root = Tree.non_root_nodes tree in
  let open Expr in
  let reset_ptr j =
    match pointer.(j) with Some p -> [ (p, int 0) ] | None -> []
  in
  let initiate =
    Action.make ~name:"initiate"
      ~guard:(var color.(root) = int green)
      ([ (color.(root), int red);
         (session.(root), int 1 - var session.(root)) ]
      @ reset_ptr root)
  in
  let copy j =
    let p = Tree.parent tree j in
    Action.make
      ~name:(Printf.sprintf "copy.%d" j)
      ~guard:
        (var session.(j) <> var session.(p)
        || (var color.(j) = int red && var color.(p) = int green))
      ([ (color.(j), var color.(p)); (session.(j), var session.(p)) ]
      @ reset_ptr j)
  in
  let scans j =
    match pointer.(j) with
    | None -> []
    | Some ptr ->
        List.mapi
          (fun i k ->
            Action.make
              ~name:(Printf.sprintf "scan.%d.%d" j i)
              ~guard:
                (var color.(j) = int red
                && var ptr = int i
                && var color.(k) = int green
                && var session.(k) = var session.(j))
              [ (ptr, var ptr + int 1) ])
          (Tree.children tree j)
  in
  let reflect j =
    let deg = List.length (Tree.children tree j) in
    match pointer.(j) with
    | None ->
        Action.make
          ~name:(Printf.sprintf "reflect.%d" j)
          ~guard:(var color.(j) = int red)
          [ (color.(j), int green) ]
    | Some ptr ->
        Action.make
          ~name:(Printf.sprintf "reflect.%d" j)
          ~guard:(var color.(j) = int red && var ptr = int deg)
          [ (color.(j), int green); (ptr, int 0) ]
  in
  let program =
    Guarded.Program.make ~name:"diffusing-lowatomic" env
      ((initiate :: List.map copy non_root)
      @ List.concat_map scans (Tree.nodes tree)
      @ List.map reflect (Tree.nodes tree))
  in
  let constraint_pred j =
    let p = Tree.parent tree j in
    var color.(j) = var color.(p)
    && var session.(j) = var session.(p)
    || (var color.(j) = int green && var color.(p) = int red)
  in
  let violated_preds =
    List.map (fun j -> Guarded.Compile.pred (constraint_pred j)) non_root
  in
  let invariant_expr = conj (List.map constraint_pred non_root) in
  let invariant = Guarded.Compile.pred invariant_expr in
  { tree; env; color; session; pointer; program; invariant; violated_preds }

let tree t = t.tree
let env t = t.env
let color t j = t.color.(j)
let session t j = t.session.(j)
let pointer t j = t.pointer.(j)
let program t = t.program
let invariant t s = t.invariant s
let all_green t = Guarded.State.make t.env

let violated t s =
  List.fold_left (fun acc p -> if p s then acc else acc + 1) 0 t.violated_preds

let consistent t s =
  let get v = Guarded.State.get s v in
  List.for_all
    (fun j ->
      match t.pointer.(j) with
      | None -> true
      | Some ptr ->
          let p = get ptr in
          (if get t.color.(j) = green then p = 0 else true)
          && List.for_all2
               (fun i k ->
                 i >= p
                 || (get t.color.(k) = green
                    && get t.session.(k) = get t.session.(j)))
               (List.init (List.length (Tree.children t.tree j)) Fun.id)
               (Tree.children t.tree j))
    (Tree.nodes t.tree)

(* Atomicity: number of distinct processes an action touches, where a
   variable's process is the integer suffix of its name ("c.3" -> 3). *)
let process_of_var v =
  match String.rindex_opt (Guarded.Var.name v) '.' with
  | None -> None
  | Some i ->
      int_of_string_opt
        (String.sub (Guarded.Var.name v) (i + 1)
           (String.length (Guarded.Var.name v) - i - 1))

let max_atomicity program =
  Array.fold_left
    (fun acc a ->
      let procs =
        Guarded.Var.Set.fold
          (fun v acc ->
            match process_of_var v with
            | Some p -> List.cons p acc
            | None -> acc)
          (Guarded.Action.touches a) []
        |> List.sort_uniq compare
      in
      max acc (List.length procs))
    0
    (Guarded.Program.actions program)

let _ = green
let _ = red
