lib/protocols/diffusing.ml: Array Guarded List Nonmask Printf Topology
