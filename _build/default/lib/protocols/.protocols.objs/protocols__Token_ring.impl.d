lib/protocols/token_ring.ml: Array Fun Guarded List Nonmask Printf Topology
