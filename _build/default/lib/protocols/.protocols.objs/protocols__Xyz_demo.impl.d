lib/protocols/xyz_demo.ml: Guarded Nonmask
