lib/protocols/reset.mli: Guarded Topology
