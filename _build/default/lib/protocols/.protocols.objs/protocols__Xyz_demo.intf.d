lib/protocols/xyz_demo.mli: Explore Guarded Nonmask
