lib/protocols/reset.ml: Array Diffusing Guarded List Printf Topology
