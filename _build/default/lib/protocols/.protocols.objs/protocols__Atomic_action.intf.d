lib/protocols/atomic_action.mli: Explore Guarded Nonmask Topology
