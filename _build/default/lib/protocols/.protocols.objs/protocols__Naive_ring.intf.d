lib/protocols/naive_ring.mli: Guarded Topology
