lib/protocols/diffusing_lowatomic.ml: Array Diffusing Fun Guarded List Printf String Topology
