lib/protocols/dijkstra_ring.ml: Array Guarded List Printf Topology
