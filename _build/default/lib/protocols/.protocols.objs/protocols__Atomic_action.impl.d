lib/protocols/atomic_action.ml: Array Guarded List Nonmask Printf Topology
