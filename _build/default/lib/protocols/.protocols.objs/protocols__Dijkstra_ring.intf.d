lib/protocols/dijkstra_ring.mli: Guarded Topology
