lib/protocols/diffusing_lowatomic.mli: Guarded Topology
