lib/protocols/spanning_tree.mli: Guarded Topology
