lib/protocols/token_ring.mli: Explore Guarded Nonmask Topology
