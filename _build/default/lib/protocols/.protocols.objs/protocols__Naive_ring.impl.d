lib/protocols/naive_ring.ml: Array Guarded List Printf Topology
