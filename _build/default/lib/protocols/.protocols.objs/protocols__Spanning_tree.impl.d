lib/protocols/spanning_tree.ml: Array Fun Guarded List Printf Stdlib Topology
