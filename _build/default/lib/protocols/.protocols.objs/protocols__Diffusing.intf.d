lib/protocols/diffusing.mli: Explore Guarded Nonmask Topology
