module Expr = Guarded.Expr
module Action = Guarded.Action
module Domain = Guarded.Domain
module Tree = Topology.Tree

let green = Diffusing.green
let red = Diffusing.red

type t = {
  tree : Tree.t;
  env : Guarded.Env.t;
  color : Guarded.Var.t array;
  session : Guarded.Var.t array;
  app : Guarded.Var.t array;
  program : Guarded.Program.t;
  invariant : Guarded.State.t -> bool;
  violated_preds : (Guarded.State.t -> bool) list;
}

let make ?(app_bound = 2) tree =
  if app_bound < 1 then invalid_arg "Reset.make: app_bound must be positive";
  let n = Tree.size tree in
  let env = Guarded.Env.create () in
  let color =
    Guarded.Env.fresh_family env "c" n (Domain.enum "color" [ "green"; "red" ])
  in
  let session = Guarded.Env.fresh_family env "sn" n Domain.bool in
  let app = Guarded.Env.fresh_family env "a" n (Domain.range 0 app_bound) in
  let root = Tree.root tree in
  let non_root = Tree.non_root_nodes tree in
  let open Expr in
  (* The root initiates a reset wave and resets itself. *)
  let initiate =
    Action.make ~name:"initiate"
      ~guard:(var color.(root) = int green)
      [
        (color.(root), int red);
        (session.(root), int 1 - var session.(root));
        (app.(root), int 0);
      ]
  in
  (* The paper's combined propagate/convergence action, extended: adopting
     red resets the application variable in the same atomic step. *)
  let copy j =
    let p = Tree.parent tree j in
    Action.make
      ~name:(Printf.sprintf "copy.%d" j)
      ~guard:
        (var session.(j) <> var session.(p)
        || (var color.(j) = int red && var color.(p) = int green))
      [
        (color.(j), var color.(p));
        (session.(j), var session.(p));
        (app.(j), ite (var color.(p) = int red) (int 0) (var app.(j)));
      ]
  in
  let reflect j =
    let kids = Tree.children tree j in
    Action.make
      ~name:(Printf.sprintf "reflect.%d" j)
      ~guard:
        (var color.(j) = int red
        && forall kids (fun k ->
               var color.(k) = int green && var session.(j) = var session.(k)))
      [ (color.(j), int green) ]
  in
  (* Application work: the counter drifts while the process is green. *)
  let work j =
    Action.make
      ~name:(Printf.sprintf "work.%d" j)
      ~guard:(var color.(j) = int green && var app.(j) < int app_bound)
      [ (app.(j), var app.(j) + int 1) ]
  in
  let program =
    Guarded.Program.make ~name:"distributed-reset" env
      ((initiate :: List.map copy non_root)
      @ List.map reflect (Tree.nodes tree)
      @ List.map work (Tree.nodes tree))
  in
  let constraint_pred j =
    let p = Tree.parent tree j in
    var color.(j) = var color.(p)
    && var session.(j) = var session.(p)
    || (var color.(j) = int green && var color.(p) = int red)
  in
  let violated_preds =
    List.map (fun j -> Guarded.Compile.pred (constraint_pred j)) non_root
  in
  let invariant = Guarded.Compile.pred (conj (List.map constraint_pred non_root)) in
  { tree; env; color; session; app; program; invariant; violated_preds }

let tree t = t.tree
let env t = t.env
let color t j = t.color.(j)
let session t j = t.session.(j)
let app t j = t.app.(j)
let program t = t.program
let invariant t s = t.invariant s
let all_green t = Guarded.State.make t.env

let turns_red t ~pre ~post =
  List.filter
    (fun j ->
      Guarded.State.get pre t.color.(j) = green
      && Guarded.State.get post t.color.(j) = red)
    (Tree.nodes t.tree)

let violated t s =
  List.fold_left (fun acc p -> if p s then acc else acc + 1) 0 t.violated_preds

let _ = red
