(** Stabilizing distributed reset.

    The paper's diffusing computation is "a simplified version of a program
    in [12]" — Arora and Gouda's distributed reset, whose job is to restore
    a distributed application to a clean global state on demand, tolerating
    arbitrary corruption of the reset machinery itself. This module layers
    that application on the diffusing computation:

    - each process carries an application variable [a.j] (a bounded counter
      standing for arbitrary application state) that drifts upward while
      the process is green ([work.j : c.j = green ∧ a.j < m → a.j := a.j+1]);
    - the red wave {e is} the reset: whenever a process adopts red from its
      parent (propagation or repair), the same atomic step sets
      [a.j := 0]; the root resets itself when it initiates.

    The reset guarantee, checked exhaustively in the tests: {e every}
    program transition that turns a process red also zeroes its application
    variable — so after any complete wave every process was reset during
    the wave, regardless of the initial corruption. The invariant [S] and
    the convergence machinery are exactly the diffusing computation's; the
    application variables are unconstrained by [S] (resetting is the
    wave's job, not the invariant's). *)

type t

val make : ?app_bound:int -> Topology.Tree.t -> t
(** [app_bound] (default 2) is the application counter's maximum. *)

val tree : t -> Topology.Tree.t
val env : t -> Guarded.Env.t
val color : t -> int -> Guarded.Var.t
val session : t -> int -> Guarded.Var.t
val app : t -> int -> Guarded.Var.t

val program : t -> Guarded.Program.t
val invariant : t -> Guarded.State.t -> bool
(** The diffusing computation's [S] (over colors and sessions only). *)

val all_green : t -> Guarded.State.t
(** All green, all application variables at 0. *)

val turns_red : t -> pre:Guarded.State.t -> post:Guarded.State.t -> int list
(** Processes whose color changed green→red in this step. *)

val violated : t -> Guarded.State.t -> int
