module Expr = Guarded.Expr
module Action = Guarded.Action
module Domain = Guarded.Domain
module Ring = Topology.Ring

type t = {
  ring : Ring.t;
  k : int;
  env : Guarded.Env.t;
  x : Guarded.Var.t array;
  program : Guarded.Program.t;
  invariant_expr : Guarded.Expr.boolean;
  invariant : Guarded.State.t -> bool;
}

let make ~nodes ~k =
  if nodes < 2 then invalid_arg "Dijkstra_ring.make: need at least 2 nodes";
  if k < 2 then invalid_arg "Dijkstra_ring.make: need k >= 2";
  let ring = Ring.create nodes in
  let last = nodes - 1 in
  let env = Guarded.Env.create () in
  let x = Guarded.Env.fresh_family env "x" nodes (Domain.range 0 (k - 1)) in
  let prv j = j - 1 in
  let others = List.init last (fun i -> i + 1) in
  let open Expr in
  let bottom_privileged = var x.(0) = var x.(last) in
  let other_privileged j = var x.(j) <> var x.(prv j) in
  let bottom =
    Action.make ~name:"bottom"
      ~guard:bottom_privileged
      [ (x.(0), (var x.(0) + int 1) mod int k) ]
  in
  let copy j =
    Action.make
      ~name:(Printf.sprintf "copy.%d" j)
      ~guard:(other_privileged j)
      [ (x.(j), var x.(prv j)) ]
  in
  let program =
    Guarded.Program.make ~name:"dijkstra-k-state" env
      (bottom :: List.map copy others)
  in
  (* Exactly one privilege: the sum of privilege indicators equals 1. *)
  let indicators =
    ite bottom_privileged (int 1) (int 0)
    :: List.map (fun j -> ite (other_privileged j) (int 1) (int 0)) others
  in
  let count = List.fold_left ( + ) (int 0) indicators in
  let invariant_expr = count = int 1 in
  let invariant = Guarded.Compile.pred invariant_expr in
  { ring; k; env; x; program; invariant_expr; invariant }

let ring t = t.ring
let env t = t.env
let x t j = t.x.(j)
let k t = t.k
let program t = t.program
let invariant t s = t.invariant s
let invariant_expr t = t.invariant_expr

let privileged t s =
  let n = Ring.size t.ring in
  let get j = Guarded.State.get s t.x.(j) in
  let acc = ref [] in
  for j = n - 1 downto 1 do
    if get j <> get (j - 1) then acc := j :: !acc
  done;
  if get 0 = get (n - 1) then 0 :: !acc else !acc

let privilege_count t s = List.length (privileged t s)
let all_zero t = Guarded.State.make t.env
let violated t s = privilege_count t s - 1
