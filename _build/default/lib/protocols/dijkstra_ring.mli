(** Dijkstra's K-state token ring — the classical wrap-around variant of
    the program the paper derives in Section 7.1 (its reference [9]).

    Node 0: [x.0 = x.N → x.0 := (x.0 + 1) mod K].
    Node [j > 0]: [x.j ≠ x.(j-1) → x.j := x.(j-1)].

    A node is privileged exactly when its guard holds; the invariant is
    "exactly one node is privileged". With [K ≥ N + 1] the program is
    self-stabilizing, and the token circulates forever (unlike the
    bounded-window {!Token_ring}, which parks at the ceiling). This is the
    variant used for long-running circulation experiments (E2). *)

type t

val make : nodes:int -> k:int -> t
(** @raise Invalid_argument if [nodes < 2] or [k < 2]. *)

val ring : t -> Topology.Ring.t
val env : t -> Guarded.Env.t
val x : t -> int -> Guarded.Var.t
val k : t -> int

val program : t -> Guarded.Program.t
val invariant : t -> Guarded.State.t -> bool
(** Exactly one privilege. *)

val invariant_expr : t -> Guarded.Expr.boolean
val privileged : t -> Guarded.State.t -> int list
val privilege_count : t -> Guarded.State.t -> int
val all_zero : t -> Guarded.State.t
val violated : t -> Guarded.State.t -> int
(** [privilege_count - 1]: extra privileges still to be destroyed. *)
