module Expr = Guarded.Expr
module Action = Guarded.Action
module Domain = Guarded.Domain
module Ring = Topology.Ring

type t = {
  ring : Ring.t;
  env : Guarded.Env.t;
  token : Guarded.Var.t array;
  program : Guarded.Program.t;
  invariant : Guarded.State.t -> bool;
}

let make ~nodes =
  let ring = Ring.create nodes in
  let env = Guarded.Env.create () in
  let token = Guarded.Env.fresh_family env "tok" nodes Domain.bool in
  let open Expr in
  let pass j =
    let s = Ring.succ ring j in
    Action.make
      ~name:(Printf.sprintf "pass.%d" j)
      ~guard:(var token.(j) = int 1)
      [ (token.(j), int 0); (token.(s), int 1) ]
  in
  let program =
    Guarded.Program.make ~name:"naive-ring" env
      (List.map pass (Ring.nodes ring))
  in
  let count =
    List.fold_left ( + ) (int 0)
      (List.map (fun j -> var token.(j)) (Ring.nodes ring))
  in
  let invariant = Guarded.Compile.pred (count = int 1) in
  { ring; env; token; program; invariant }

let ring t = t.ring
let env t = t.env
let token t j = t.token.(j)
let program t = t.program
let invariant t s = t.invariant s

let token_count t s =
  Array.fold_left (fun acc v -> acc + Guarded.State.get s v) 0 t.token

let one_token t =
  Guarded.State.init t.env (fun v ->
      if Guarded.Var.equal v t.token.(0) then 1 else 0)
