(** A {e non}-stabilizing token ring — the baseline showing the method's
    value (experiment E10).

    Each node holds a token bit; a node with the token passes it on:
    [tok.j = 1 → tok.j, tok.succ(j) := 0, 1]. On the invariant
    ("exactly one token") the behaviour is the same token circulation the
    paper's ring provides — but faults that duplicate or destroy tokens are
    never repaired: a zero-token state deadlocks and a multi-token state
    keeps all its tokens forever. The convergence checker exhibits both
    failures, which is exactly what the paper's convergence actions are
    there to prevent. *)

type t

val make : nodes:int -> t
val ring : t -> Topology.Ring.t
val env : t -> Guarded.Env.t
val token : t -> int -> Guarded.Var.t
val program : t -> Guarded.Program.t
val invariant : t -> Guarded.State.t -> bool
(** Exactly one token. *)

val token_count : t -> Guarded.State.t -> int
val one_token : t -> Guarded.State.t
(** Token at node 0. *)
