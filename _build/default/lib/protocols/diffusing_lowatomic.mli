(** Low-atomicity refinement of the diffusing computation.

    The paper's concluding remarks point out that the reflection action of
    Section 5.1 reads a node and {e all} its children in one atomic step,
    which is unsuitable for a distributed implementation, and that a
    refinement with low-atomicity actions preserves convergence. This module
    implements such a refinement and the test-suite/experiments check the
    preservation claim by direct model checking (the refinement is outside
    the scope of Theorems 1–3, which is precisely why the paper calls
    refinement out as future work).

    Each internal node gains a scan pointer [ptr.j ∈ 0..deg(j)]. Reflection
    becomes a sequence of single-child checks:

    - [scan.j.i : c.j = red ∧ ptr.j = i ∧ c.k = green ∧ sn.k ≡ sn.j →
       ptr.j := i+1] where [k] is the [i]-th child — reads one child only;
    - [reflect.j : c.j = red ∧ ptr.j = deg(j) → c.j, ptr.j := green, 0].

    The initiate and copy actions reset the pointer when a node (re)enters
    the red phase. Every action now reads at most one neighbour, matching
    the atomicity of the token ring design. The invariant [S] is unchanged
    (it constrains colors and session numbers only). *)

type t

val make : Topology.Tree.t -> t

val tree : t -> Topology.Tree.t
val env : t -> Guarded.Env.t
val color : t -> int -> Guarded.Var.t
val session : t -> int -> Guarded.Var.t
val pointer : t -> int -> Guarded.Var.t option
(** [None] for leaves. *)

val program : t -> Guarded.Program.t
val invariant : t -> Guarded.State.t -> bool
val all_green : t -> Guarded.State.t

(** The scan-pointer consistency relation: for every internal node [j],
    either [c.j = green] and [ptr.j = 0], or every already-scanned child
    ([i < ptr.j]) is green with [j]'s session number. This relation is
    closed under the program (checked in the test suite), and within it the
    refined program is a step-refinement of {!Diffusing.combined} — outside
    it, a corrupted pointer can reflect prematurely, which the convergence
    actions then repair (see [Nonmask.Refine] and experiment E13). *)
val consistent : t -> Guarded.State.t -> bool
val violated : t -> Guarded.State.t -> int
(** Violated [R.j] constraints (same constraints as {!Diffusing}). *)

val max_atomicity : Guarded.Program.t -> int
(** Largest number of {e processes} (variable-name suffixes) any single
    action touches — 2 for this refinement and the token ring, [1 + max
    fan-out] for the original reflect action. *)
