(** Rooted trees.

    The diffusing computation (Section 5.1) runs on a finite rooted tree;
    [parent.(j)] is the paper's [P.j], with [parent.(root) = root]. Nodes are
    [0 .. size - 1]. *)

type t

val of_parents : int array -> t
(** Build a tree from a parent array. Exactly one node must satisfy
    [parent.(j) = j] (the root), every parent must be in range, and every
    node must reach the root by following parents.
    @raise Invalid_argument if the array does not describe a rooted tree. *)

val size : t -> int
val root : t -> int
val parent : t -> int -> int
(** [parent t j] is [P.j]; the root is its own parent. *)

val children : t -> int -> int list
val is_leaf : t -> int -> bool
val is_root : t -> int -> bool

val depth : t -> int -> int
(** Edge distance from the root. *)

val height : t -> int
(** Maximum depth over all nodes; 0 for a single-node tree. *)

val nodes : t -> int list
(** [0; 1; ...; size-1]. *)

val non_root_nodes : t -> int list

(** {1 Builders} *)

val chain : int -> t
(** Path rooted at node 0: [0 <- 1 <- ... <- n-1].
    @raise Invalid_argument if [n <= 0]. *)

val star : int -> t
(** Node 0 is the root; all others are its children. *)

val balanced : arity:int -> int -> t
(** Complete [arity]-ary tree on [n] nodes (heap numbering: the parent of
    [j > 0] is [(j - 1) / arity]).
    @raise Invalid_argument if [arity <= 0 || n <= 0]. *)

val random : Prng.t -> int -> t
(** Uniform random recursive tree: the parent of node [j > 0] is drawn
    uniformly from [0 .. j-1]. *)

val to_digraph : t -> unit Dgraph.Digraph.t
(** Parent-to-child edges; no self-loop at the root. *)

val pp : Format.formatter -> t -> unit
