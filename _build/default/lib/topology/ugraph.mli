(** Undirected graphs of processes.

    Used by protocols whose communication structure is a general network —
    the stabilizing BFS spanning tree runs on one of these. Nodes are
    [0 .. size - 1]; edges are unordered pairs without self-loops or
    duplicates. *)

type t

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on [n] nodes. Self-loops and duplicate
    edges (in either orientation) are rejected.
    @raise Invalid_argument on bad input. *)

val size : t -> int
val edge_count : t -> int
val neighbors : t -> int -> int list
(** Sorted ascending. *)

val degree : t -> int -> int
val edges : t -> (int * int) list
(** Each edge once, with [fst < snd]. *)

val is_connected : t -> bool

val distances_from : t -> int -> int array
(** BFS hop distances; unreachable nodes get [max_int]. *)

val eccentricity : t -> int -> int
(** Largest finite distance from the node.
    @raise Invalid_argument if some node is unreachable. *)

(** {1 Builders} *)

val path : int -> t
val cycle : int -> t
val complete : int -> t
val star : int -> t
(** Center is node 0. *)

val grid : width:int -> height:int -> t
(** [width * height] nodes in row-major order, 4-neighbor connectivity. *)

val random_connected : Prng.t -> int -> extra_edges:int -> t
(** A uniform random recursive tree plus [extra_edges] additional random
    edges (deduplicated), guaranteeing connectivity. *)

val pp : Format.formatter -> t -> unit
