type t = { n : int; adj : int list array; m : int }

let of_edges n edge_list =
  if n <= 0 then invalid_arg "Ugraph.of_edges: need at least one node";
  let adj = Array.make n [] in
  let seen = Hashtbl.create (2 * List.length edge_list) in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Ugraph.of_edges: endpoint out of range";
      if a = b then invalid_arg "Ugraph.of_edges: self-loop";
      let key = (min a b, max a b) in
      if Hashtbl.mem seen key then
        invalid_arg "Ugraph.of_edges: duplicate edge";
      Hashtbl.add seen key ();
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    edge_list;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { n; adj; m = Hashtbl.length seen }

let size g = g.n
let edge_count g = g.m
let neighbors g j = g.adj.(j)
let degree g j = List.length g.adj.(j)

let edges g =
  let acc = ref [] in
  for a = g.n - 1 downto 0 do
    List.iter (fun b -> if a < b then acc := (a, b) :: !acc) g.adj.(a)
  done;
  !acc

let distances_from g root =
  let dist = Array.make g.n max_int in
  let queue = Queue.create () in
  dist.(root) <- 0;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      g.adj.(v)
  done;
  dist

let is_connected g = Array.for_all (fun d -> d < max_int) (distances_from g 0)

let eccentricity g j =
  let dist = distances_from g j in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Ugraph.eccentricity: disconnected"
      else max acc d)
    0 dist

let path n = of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Ugraph.cycle: need at least 3 nodes";
  of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let complete n =
  of_edges n
    (List.concat
       (List.init n (fun a -> List.init a (fun b -> (b, a)))))

let star n = of_edges n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Ugraph.grid";
  let id r c = (r * width) + c in
  let edges = ref [] in
  for r = 0 to height - 1 do
    for c = 0 to width - 1 do
      if c + 1 < width then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < height then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  of_edges (width * height) !edges

let random_connected rng n ~extra_edges =
  if n <= 0 then invalid_arg "Ugraph.random_connected";
  let seen = Hashtbl.create (2 * n) in
  let edges = ref [] in
  let add a b =
    let key = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (a, b) :: !edges
    end
  in
  for j = 1 to n - 1 do
    add (Prng.int rng j) j
  done;
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra_edges && !attempts < 20 * (extra_edges + 1) do
    incr attempts;
    let a = Prng.int rng n and b = Prng.int rng n in
    let before = Hashtbl.length seen in
    add a b;
    if Hashtbl.length seen > before then incr added
  done;
  of_edges n !edges

let pp ppf g =
  Format.fprintf ppf "@[<v>ugraph (%d nodes, %d edges)@," g.n g.m;
  List.iter (fun (a, b) -> Format.fprintf ppf "  %d -- %d@," a b) (edges g);
  Format.fprintf ppf "@]"
