type t = {
  parent : int array;
  root : int;
  children : int list array;
  depth : int array;
}

let of_parents parent =
  let n = Array.length parent in
  if n = 0 then invalid_arg "Tree.of_parents: empty";
  let root = ref (-1) in
  Array.iteri
    (fun j p ->
      if p < 0 || p >= n then
        invalid_arg
          (Printf.sprintf "Tree.of_parents: parent %d of node %d out of range"
             p j);
      if p = j then
        if !root = -1 then root := j
        else invalid_arg "Tree.of_parents: multiple roots")
    parent;
  if !root = -1 then invalid_arg "Tree.of_parents: no root";
  let root = !root in
  (* depth + cycle detection in one pass *)
  let depth = Array.make n (-1) in
  depth.(root) <- 0;
  let rec resolve j visiting =
    if depth.(j) >= 0 then depth.(j)
    else if List.mem j visiting then
      invalid_arg "Tree.of_parents: cycle not through root"
    else begin
      let d = resolve parent.(j) (j :: visiting) + 1 in
      depth.(j) <- d;
      d
    end
  in
  for j = 0 to n - 1 do
    ignore (resolve j [])
  done;
  let children = Array.make n [] in
  for j = n - 1 downto 0 do
    if j <> root then children.(parent.(j)) <- j :: children.(parent.(j))
  done;
  { parent = Array.copy parent; root; children; depth }

let size t = Array.length t.parent
let root t = t.root
let parent t j = t.parent.(j)
let children t j = t.children.(j)
let is_leaf t j = t.children.(j) = []
let is_root t j = j = t.root
let depth t j = t.depth.(j)
let height t = Array.fold_left max 0 t.depth
let nodes t = List.init (size t) (fun i -> i)
let non_root_nodes t = List.filter (fun j -> j <> t.root) (nodes t)

let chain n =
  if n <= 0 then invalid_arg "Tree.chain";
  of_parents (Array.init n (fun j -> max 0 (j - 1)))

let star n =
  if n <= 0 then invalid_arg "Tree.star";
  of_parents (Array.init n (fun j -> if j = 0 then 0 else 0))

let balanced ~arity n =
  if arity <= 0 || n <= 0 then invalid_arg "Tree.balanced";
  of_parents (Array.init n (fun j -> if j = 0 then 0 else (j - 1) / arity))

let random rng n =
  if n <= 0 then invalid_arg "Tree.random";
  of_parents (Array.init n (fun j -> if j = 0 then 0 else Prng.int rng j))

let to_digraph t =
  let g = Dgraph.Digraph.create (size t) in
  Array.iteri
    (fun j p -> if j <> t.root then Dgraph.Digraph.add_edge g ~src:p ~dst:j ())
    t.parent;
  g

let pp ppf t =
  Format.fprintf ppf "@[<v>tree (%d nodes, root %d)@," (size t) t.root;
  List.iter
    (fun j ->
      if j <> t.root then Format.fprintf ppf "  %d -> %d@," t.parent.(j) j)
    (nodes t);
  Format.fprintf ppf "@]"
