type t = { n : int }

let create n =
  if n < 2 then invalid_arg "Ring.create: need at least 2 nodes";
  { n }

let size t = t.n
let succ t j = (j + 1) mod t.n
let pred t j = (j + t.n - 1) mod t.n
let nodes t = List.init t.n (fun i -> i)
let distance t a b = ((b - a) mod t.n + t.n) mod t.n

let to_digraph t =
  let g = Dgraph.Digraph.create t.n in
  List.iter (fun j -> Dgraph.Digraph.add_edge g ~src:j ~dst:(succ t j) ()) (nodes t);
  g
