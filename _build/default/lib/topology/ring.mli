(** Rings of processes.

    The token ring (Section 7.1) has [N+1] nodes [0 .. N] where the
    successor of [j] is [j + 1 mod (N + 1)]. *)

type t

val create : int -> t
(** [create n] is a ring of [n] nodes ([n >= 2]).
    @raise Invalid_argument if [n < 2]. *)

val size : t -> int
val succ : t -> int -> int
(** Clockwise neighbor. *)

val pred : t -> int -> int
val nodes : t -> int list
val distance : t -> int -> int -> int
(** Clockwise hop count from the first node to the second. *)

val to_digraph : t -> unit Dgraph.Digraph.t
(** Edges [j -> succ j]. *)
