lib/topology/ring.mli: Dgraph
