lib/topology/ugraph.ml: Array Format Hashtbl List Prng Queue
