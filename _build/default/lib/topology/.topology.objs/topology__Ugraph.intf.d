lib/topology/ugraph.mli: Format Prng
