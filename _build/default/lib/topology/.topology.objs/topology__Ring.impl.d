lib/topology/ring.ml: Dgraph List
