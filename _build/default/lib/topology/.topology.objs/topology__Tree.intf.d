lib/topology/tree.mli: Dgraph Format Prng
