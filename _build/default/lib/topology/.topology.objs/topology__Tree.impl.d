lib/topology/tree.ml: Array Dgraph Format List Printf Prng
