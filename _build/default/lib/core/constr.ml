module Expr = Guarded.Expr

type t = { name : string; pred : Guarded.Expr.boolean }

let make ~name pred = { name; pred }
let name c = c.name
let pred c = c.pred
let holds c s = Expr.eval s c.pred
let compile c = Guarded.Compile.pred c.pred
let reads c = Expr.reads c.pred
let conj cs = Expr.conj (List.map pred cs)

let violated_count cs s =
  List.fold_left (fun acc c -> if holds c s then acc else acc + 1) 0 cs

let pp ppf c = Format.fprintf ppf "%s: %a" c.name Expr.pp c.pred
