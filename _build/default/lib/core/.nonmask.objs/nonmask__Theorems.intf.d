lib/core/theorems.mli: Certify Cgraph Explore Guarded Spec
