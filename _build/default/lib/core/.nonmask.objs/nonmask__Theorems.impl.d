lib/core/theorems.ml: Array Certify Cgraph Constr Dgraph Explore Format Fun Guarded List Printf Spec
