lib/core/derive.mli: Certify Cgraph Explore Format Guarded Spec
