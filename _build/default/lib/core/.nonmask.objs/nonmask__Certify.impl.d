lib/core/certify.ml: Dgraph Explore Format List Printf
