lib/core/spec.ml: Format Guarded
