lib/core/derive.ml: Certify Cgraph Dgraph Format Guarded List Theorems
