lib/core/cgraph.mli: Constr Dgraph Format Guarded
