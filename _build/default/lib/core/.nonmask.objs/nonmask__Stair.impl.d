lib/core/stair.ml: Explore Format Guarded List Printf
