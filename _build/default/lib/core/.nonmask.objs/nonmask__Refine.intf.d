lib/core/refine.mli: Explore Format Guarded
