lib/core/spec.mli: Format Guarded
