lib/core/constr.mli: Format Guarded
