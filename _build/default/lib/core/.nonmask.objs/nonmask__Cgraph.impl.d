lib/core/cgraph.ml: Array Constr Dgraph Format Guarded Hashtbl List String
