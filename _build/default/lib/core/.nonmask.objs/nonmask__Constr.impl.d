lib/core/constr.ml: Format Guarded List
