lib/core/variant.ml: Array Cgraph Constr Explore Format Guarded Spec
