lib/core/stair.mli: Explore Format Guarded
