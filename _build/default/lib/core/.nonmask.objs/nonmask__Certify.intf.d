lib/core/certify.mli: Dgraph Explore Format Guarded
