lib/core/refine.ml: Array Dgraph Explore Format Guarded List Printf
