lib/core/design.mli: Constr Guarded
