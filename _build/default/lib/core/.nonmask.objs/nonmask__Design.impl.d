lib/core/design.ml: Constr Guarded List
