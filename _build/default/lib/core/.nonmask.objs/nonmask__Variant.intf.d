lib/core/variant.mli: Cgraph Explore Format Guarded Spec
