(** Candidate triples.

    The design problem of Section 3 starts from a candidate triple
    [(p, S, T)]: a program [p] of closure actions that preserve both the
    invariant [S] and the fault span [T] (with [S ⟹ T]). The designer then
    adds convergence actions; the theorems validate the result.

    For stabilizing programs [T = true]. *)

type t = private {
  name : string;
  program : Guarded.Program.t;  (** Closure actions only. *)
  invariant : Guarded.Expr.boolean;  (** [S]. *)
  fault_span : Guarded.Expr.boolean;  (** [T]. *)
}

val make :
  name:string ->
  program:Guarded.Program.t ->
  invariant:Guarded.Expr.boolean ->
  ?fault_span:Guarded.Expr.boolean ->
  unit ->
  t
(** [fault_span] defaults to [true] (stabilization). *)

val name : t -> string
val program : t -> Guarded.Program.t
val env : t -> Guarded.Env.t
val invariant : t -> Guarded.Expr.boolean
val fault_span : t -> Guarded.Expr.boolean

val invariant_holds : t -> Guarded.State.t -> bool
val fault_span_holds : t -> Guarded.State.t -> bool

val compile_invariant : t -> Guarded.State.t -> bool
val compile_fault_span : t -> Guarded.State.t -> bool

val pp : Format.formatter -> t -> unit
