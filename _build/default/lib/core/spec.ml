module Expr = Guarded.Expr

type t = {
  name : string;
  program : Guarded.Program.t;
  invariant : Guarded.Expr.boolean;
  fault_span : Guarded.Expr.boolean;
}

let make ~name ~program ~invariant ?(fault_span = Expr.tt) () =
  { name; program; invariant; fault_span }

let name t = t.name
let program t = t.program
let env t = Guarded.Program.env t.program
let invariant t = t.invariant
let fault_span t = t.fault_span
let invariant_holds t s = Expr.eval s t.invariant
let fault_span_holds t s = Expr.eval s t.fault_span
let compile_invariant t = Guarded.Compile.pred t.invariant
let compile_fault_span t = Guarded.Compile.pred t.fault_span

let pp ppf t =
  Format.fprintf ppf "@[<v>candidate triple %s@,S = %a@,T = %a@,%a@]" t.name
    Expr.pp t.invariant Expr.pp t.fault_span Guarded.Program.pp t.program
