(** Validation certificates.

    A theorem validator discharges a list of obligations — closure of each
    constraint under each closure action, establishment checks, graph
    shapes, orderings, layer conditions — each exhaustively over an
    enumerated state space. The certificate records every obligation with
    its outcome, so a failed validation pinpoints the offending action,
    constraint and counterexample state. *)

type check = {
  label : string;  (** What was checked, human-readable. *)
  ok : bool;
  detail : string option;  (** Counterexample rendering when [not ok]. *)
}

type t = {
  theorem : string;  (** "Theorem 1" / "Theorem 2" / "Theorem 3". *)
  spec_name : string;
  shapes : (string * Dgraph.Classify.shape) list;
      (** Graph shape per layer (a single entry for Theorems 1 and 2). *)
  checks : check list;
}

val ok : t -> bool
(** All checks passed. *)

val failures : t -> check list

val check_pass : string -> check
val check_fail : string -> detail:string -> check

val of_closure_result :
  Guarded.Env.t ->
  string ->
  (unit, Explore.Closure.violation) result ->
  check

val pp : Format.formatter -> t -> unit
(** Summary plus any failing checks in full. *)

val pp_full : Format.formatter -> t -> unit
(** Every check, passing or not. *)
