module Expr = Guarded.Expr
module Action = Guarded.Action

let convergence_action ~name c stmt =
  Action.make ~name ~guard:(Expr.not_ (Constr.pred c)) stmt

let convergence_action_guarded ~name ~guard stmt =
  Action.make ~name ~guard stmt

let same_statement a b =
  let norm act =
    Action.assigns act
    |> List.map (fun (v, e) -> (Guarded.Var.index v, e))
    |> List.sort (fun (i, _) (j, _) -> compare i j)
  in
  let na = norm a and nb = norm b in
  List.length na = List.length nb
  && List.for_all2
       (fun (i, e1) (j, e2) -> i = j && Expr.equal_num e1 e2)
       na nb

let combine ~name a b =
  if not (same_statement a b) then
    invalid_arg "Design.combine: statements differ";
  Action.make ~name
    ~guard:(Expr.( || ) (Action.guard a) (Action.guard b))
    (Action.assigns a)

let simplify_action a =
  Action.make ~name:(Action.name a)
    ~guard:(Expr.simplify (Action.guard a))
    (List.map (fun (v, e) -> (v, Expr.simplify_num e)) (Action.assigns a))
