(** Helpers for the paper's design recipe (Section 3).

    The recipe: given a candidate triple, add for each constraint [c] one
    convergence action [¬c → "establish c while preserving T"]. When the
    establishing statement coincides with a closure action's statement, the
    two actions can be merged by disjoining their guards — both worked
    examples in the paper perform this simplification. *)

val convergence_action :
  name:string -> Constr.t -> (Guarded.Var.t * Guarded.Expr.num) list ->
  Guarded.Action.t
(** [convergence_action ~name c stmt] is the action [¬c → stmt]. *)

val convergence_action_guarded :
  name:string ->
  guard:Guarded.Expr.boolean ->
  (Guarded.Var.t * Guarded.Expr.num) list ->
  Guarded.Action.t
(** A convergence action with an explicit guard (which must still imply
    [¬c] under the design's hypotheses — the theorem validators check
    that). *)

val same_statement : Guarded.Action.t -> Guarded.Action.t -> bool
(** Do two actions perform the same simultaneous assignment? *)

val combine : name:string -> Guarded.Action.t -> Guarded.Action.t -> Guarded.Action.t
(** [combine ~name a b] merges actions with equal statements into
    [guard a ∨ guard b -> statement], the paper's simplification.
    @raise Invalid_argument if the statements differ. *)

val simplify_action : Guarded.Action.t -> Guarded.Action.t
(** Constant-fold the guard and right-hand sides. *)
