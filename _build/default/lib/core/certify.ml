type check = { label : string; ok : bool; detail : string option }

type t = {
  theorem : string;
  spec_name : string;
  shapes : (string * Dgraph.Classify.shape) list;
  checks : check list;
}

let ok t = List.for_all (fun c -> c.ok) t.checks
let failures t = List.filter (fun c -> not c.ok) t.checks
let check_pass label = { label; ok = true; detail = None }
let check_fail label ~detail = { label; ok = false; detail = Some detail }

let of_closure_result env label = function
  | Ok () -> check_pass label
  | Error v ->
      check_fail label
        ~detail:(Format.asprintf "%a" (Explore.Closure.pp_violation env) v)

let pp_check ppf c =
  Format.fprintf ppf "  [%s] %s%s"
    (if c.ok then "ok" else "FAIL")
    c.label
    (match c.detail with
    | Some d when not c.ok -> "\n    " ^ d
    | _ -> "")

let pp ppf t =
  let fails = failures t in
  Format.fprintf ppf "@[<v>%s certificate for %s: %s (%d checks%s)@,"
    t.theorem t.spec_name
    (if ok t then "VALID" else "INVALID")
    (List.length t.checks)
    (if fails = [] then ""
     else Printf.sprintf ", %d failed" (List.length fails));
  List.iter
    (fun (layer, shape) ->
      Format.fprintf ppf "  graph %s: %s@," layer
        (Dgraph.Classify.shape_to_string shape))
    t.shapes;
  List.iter (fun c -> Format.fprintf ppf "%a@," pp_check c) fails;
  Format.fprintf ppf "@]"

let pp_full ppf t =
  Format.fprintf ppf "@[<v>%s certificate for %s: %s@," t.theorem t.spec_name
    (if ok t then "VALID" else "INVALID");
  List.iter
    (fun (layer, shape) ->
      Format.fprintf ppf "  graph %s: %s@," layer
        (Dgraph.Classify.shape_to_string shape))
    t.shapes;
  List.iter (fun c -> Format.fprintf ppf "%a@," pp_check c) t.checks;
  Format.fprintf ppf "@]"
