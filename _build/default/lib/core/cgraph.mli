(** Constraint graphs (Section 4 of the paper).

    A constraint graph of a set [q] of convergence actions is a directed
    graph with one edge per action in [q], where

    - each node is labeled with a set of variables, the labels being
      mutually exclusive;
    - the edge of action [ac] goes from [v] to [w] when all variables
      written by [ac] are in the label of [w] and all variables read are in
      the union of the labels of [v] and [w].

    There is a bijection between constraints and convergence actions, so an
    edge also stands for its constraint; we additionally require that the
    constraint's own variables fit in [label v ∪ label w] (when the guard is
    exactly [¬c] this is automatic, and the theorems' structural
    preservation argument relies on it).

    The classification of the graph as out-tree / self-looping / cyclic
    picks which theorem applies (Sections 5–7). *)

type node = private {
  id : int;
  label : string;
  vars : Guarded.Var.Set.t;
}

type t

type pair = { constr : Constr.t; action : Guarded.Action.t }
(** One constraint together with its convergence action. *)

type error =
  | Overlapping_nodes of { node_a : string; node_b : string; var : string }
  | Unassigned_variable of { action : string; var : string }
  | No_writes of { action : string }
  | Writes_cross_nodes of { action : string }
  | Reads_too_wide of { action : string }

val build :
  nodes:(string * Guarded.Var.Set.t) list -> pairs:pair list -> (t, error) result
(** Validate the definition and place each action's edge. *)

val build_exn : nodes:(string * Guarded.Var.Set.t) list -> pairs:pair list -> t
(** @raise Invalid_argument with a rendered {!error}. *)

val infer_nodes : pair list -> (string * Guarded.Var.Set.t) list
(** A canonical node partition: variables written by the same action are
    merged (union–find across all actions); variables only read get
    singleton nodes. Labels list the member variables. The result may still
    fail [build] if some action reads across more than two nodes. *)

val nodes : t -> node array
val pairs : t -> pair array
val graph : t -> int Dgraph.Digraph.t
(** Edge labels are indices into [pairs]. *)

val edge_of_pair : t -> int -> int * int
(** [(src node id, dst node id)] of the pair at this index. *)

val node_of_var : t -> Guarded.Var.t -> node option

val shape : t -> Dgraph.Classify.shape

val ranks : t -> int array option
(** Per-node paper ranks; [None] when the graph is cyclic. *)

val pair_rank : t -> int array option
(** Per-pair rank: the rank of the pair's target node. *)

val constraints : t -> Constr.t list
val actions : t -> Guarded.Action.t list

val to_dot : t -> string
val pp_error : Format.formatter -> error -> unit
val pp : Format.formatter -> t -> unit
