module Var = Guarded.Var
module Action = Guarded.Action

type node = { id : int; label : string; vars : Guarded.Var.Set.t }

type pair = { constr : Constr.t; action : Guarded.Action.t }

type t = {
  nodes : node array;
  pairs : pair array;
  graph : int Dgraph.Digraph.t;
}

type error =
  | Overlapping_nodes of { node_a : string; node_b : string; var : string }
  | Unassigned_variable of { action : string; var : string }
  | No_writes of { action : string }
  | Writes_cross_nodes of { action : string }
  | Reads_too_wide of { action : string }

let pp_error ppf = function
  | Overlapping_nodes { node_a; node_b; var } ->
      Format.fprintf ppf "nodes %s and %s overlap on variable %s" node_a
        node_b var
  | Unassigned_variable { action; var } ->
      Format.fprintf ppf "variable %s of action %s is in no node" var action
  | No_writes { action } ->
      Format.fprintf ppf "action %s writes no variable" action
  | Writes_cross_nodes { action } ->
      Format.fprintf ppf "action %s writes variables of more than one node"
        action
  | Reads_too_wide { action } ->
      Format.fprintf ppf
        "action %s reads variables outside its source and target nodes" action

exception Err of error

let build ~nodes ~pairs =
  try
    let node_arr =
      Array.of_list
        (List.mapi (fun id (label, vars) -> { id; label; vars }) nodes)
    in
    (* mutual exclusivity of labels *)
    Array.iteri
      (fun i a ->
        Array.iteri
          (fun j b ->
            if i < j then
              match Var.Set.choose_opt (Var.Set.inter a.vars b.vars) with
              | Some v ->
                  raise
                    (Err
                       (Overlapping_nodes
                          {
                            node_a = a.label;
                            node_b = b.label;
                            var = Var.name v;
                          }))
              | None -> ())
          node_arr)
      node_arr;
    let node_of_var v =
      match
        Array.find_opt (fun n -> Var.Set.mem v n.vars) node_arr
      with
      | Some n -> Some n
      | None -> None
    in
    let pair_arr = Array.of_list pairs in
    let g = Dgraph.Digraph.create (Array.length node_arr) in
    Array.iteri
      (fun idx { constr; action } ->
        let aname = Action.name action in
        let writes = Action.writes action in
        (match Var.Set.choose_opt writes with
        | None -> raise (Err (No_writes { action = aname }))
        | Some _ -> ());
        (* all variables mentioned anywhere must be assigned to nodes *)
        let mentioned =
          Var.Set.union (Action.touches action) (Constr.reads constr)
        in
        Var.Set.iter
          (fun v ->
            if node_of_var v = None then
              raise
                (Err (Unassigned_variable { action = aname; var = Var.name v })))
          mentioned;
        let dst =
          match
            Var.Set.fold
              (fun v acc ->
                match (node_of_var v, acc) with
                | Some n, None -> Some n
                | Some n, Some m when n.id = m.id -> acc
                | Some _, Some _ ->
                    raise (Err (Writes_cross_nodes { action = aname }))
                | None, _ -> assert false)
              writes None
          with
          | Some n -> n
          | None -> assert false
        in
        let reads =
          Var.Set.union (Action.reads action) (Constr.reads constr)
        in
        let outside = Var.Set.diff reads dst.vars in
        let src =
          Var.Set.fold
            (fun v acc ->
              match (node_of_var v, acc) with
              | Some n, None -> Some n
              | Some n, Some m when n.id = m.id -> acc
              | Some _, Some _ ->
                  raise (Err (Reads_too_wide { action = aname }))
              | None, _ -> assert false)
            outside None
        in
        let src = match src with Some n -> n | None -> dst in
        Dgraph.Digraph.add_edge g ~src:src.id ~dst:dst.id idx)
      pair_arr;
    Ok { nodes = node_arr; pairs = pair_arr; graph = g }
  with Err e -> Error e

let build_exn ~nodes ~pairs =
  match build ~nodes ~pairs with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Cgraph.build: %a" pp_error e)

let infer_nodes pairs =
  (* Union–find keyed by variable index. *)
  let parent : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let var_by_index : (int, Var.t) Hashtbl.t = Hashtbl.create 64 in
  let register v =
    let i = Var.index v in
    if not (Hashtbl.mem parent i) then Hashtbl.add parent i i;
    Hashtbl.replace var_by_index i v
  in
  let rec find i =
    let p = Hashtbl.find parent i in
    if p = i then i
    else begin
      let r = find p in
      Hashtbl.replace parent i r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun { constr; action } ->
      Var.Set.iter register (Action.touches action);
      Var.Set.iter register (Constr.reads constr);
      match Var.Set.elements (Action.writes action) with
      | [] -> ()
      | w :: ws -> List.iter (fun v -> union (Var.index w) (Var.index v)) ws)
    pairs;
  let classes : (int, Var.t list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun i _ ->
      let r = find i in
      let v = Hashtbl.find var_by_index i in
      Hashtbl.replace classes r
        (v :: (try Hashtbl.find classes r with Not_found -> [])))
    parent;
  Hashtbl.fold
    (fun _ vars acc ->
      let vars = List.sort Var.compare vars in
      let label = String.concat "," (List.map Var.name vars) in
      (label, Var.Set.of_list vars) :: acc)
    classes []
  |> List.sort compare

let nodes t = Array.copy t.nodes
let pairs t = Array.copy t.pairs
let graph t = t.graph

let edge_of_pair t idx =
  let found = ref None in
  List.iter
    (fun (e : _ Dgraph.Digraph.edge) ->
      if e.label = idx then found := Some (e.src, e.dst))
    (Dgraph.Digraph.edges t.graph);
  match !found with
  | Some x -> x
  | None -> invalid_arg "Cgraph.edge_of_pair: no such pair"

let node_of_var t v =
  Array.find_opt (fun n -> Var.Set.mem v n.vars) t.nodes

let shape t = Dgraph.Classify.shape t.graph
let ranks t = Dgraph.Topo.ranks t.graph

let pair_rank t =
  match ranks t with
  | None -> None
  | Some node_ranks ->
      let r = Array.make (Array.length t.pairs) 0 in
      List.iter
        (fun (e : _ Dgraph.Digraph.edge) -> r.(e.label) <- node_ranks.(e.dst))
        (Dgraph.Digraph.edges t.graph);
      Some r

let constraints t = Array.to_list t.pairs |> List.map (fun p -> p.constr)
let actions t = Array.to_list t.pairs |> List.map (fun p -> p.action)

let to_dot t =
  Dgraph.Dot.to_dot ~name:"constraint-graph"
    ~node_label:(fun i -> t.nodes.(i).label)
    ~edge_label:(fun idx -> Constr.name t.pairs.(idx).constr)
    t.graph

let pp ppf t =
  Format.fprintf ppf "@[<v>constraint graph (%s):@,"
    (Dgraph.Classify.shape_to_string (shape t));
  List.iter
    (fun (e : _ Dgraph.Digraph.edge) ->
      Format.fprintf ppf "  %s --[%s]--> %s@," t.nodes.(e.src).label
        (Constr.name t.pairs.(e.label).constr)
        t.nodes.(e.dst).label)
    (Dgraph.Digraph.edges t.graph);
  Format.fprintf ppf "@]"
