(** Constraints.

    Section 3: the invariant [S] is partitioned into a set of state
    predicates — the {e constraints} in [S] — each of which can be
    independently checked and established by some program action. A
    constraint here is a named boolean expression over program variables. *)

type t = private { name : string; pred : Guarded.Expr.boolean }

val make : name:string -> Guarded.Expr.boolean -> t

val name : t -> string
val pred : t -> Guarded.Expr.boolean

val holds : t -> Guarded.State.t -> bool
(** Interpret the predicate (slow path; use [compile] in loops). *)

val compile : t -> Guarded.State.t -> bool

val reads : t -> Guarded.Var.Set.t
(** Variables the predicate mentions. *)

val conj : t list -> Guarded.Expr.boolean
(** Conjunction of the constraints' predicates. *)

val violated_count : t list -> Guarded.State.t -> int
(** How many of the constraints do not hold — a crude severity measure used
    by adversarial daemons and the variant function. *)

val pp : Format.formatter -> t -> unit
