let topological_order g =
  let n = Digraph.node_count g in
  let indeg = Array.init n (fun i -> Digraph.in_degree g i) in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr seen;
    Digraph.iter_succ g v (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
  done;
  if !seen = n then Some (List.rev !order) else None

let is_acyclic g = topological_order g <> None

let is_acyclic_ignoring_self_loops g =
  is_acyclic (Digraph.drop_self_loops g)

let ranks g =
  let core = Digraph.drop_self_loops g in
  match topological_order core with
  | None -> None
  | Some order ->
      let n = Digraph.node_count g in
      let rank = Array.make n 1 in
      List.iter
        (fun v ->
          List.iter
            (fun p -> if p <> v then rank.(v) <- max rank.(v) (rank.(p) + 1))
            (Digraph.pred core v))
        order;
      Some rank

let longest_path_lengths g =
  match topological_order g with
  | None -> None
  | Some order ->
      let n = Digraph.node_count g in
      let dist = Array.make n 0 in
      List.iter
        (fun v ->
          List.iter
            (fun p -> dist.(v) <- max dist.(v) (dist.(p) + 1))
            (Digraph.pred g v))
        order;
      Some dist

let find_cycle g =
  let n = Digraph.node_count g in
  (* Self-loops first: cheapest cycles to report. *)
  let self = ref None in
  for i = 0 to n - 1 do
    if !self = None && Digraph.has_self_loop g i then self := Some [ i ]
  done;
  match !self with
  | Some _ as c -> c
  | None ->
      (* Iterative DFS with colors; the frame stack doubles as the DFS path
         from which the cycle is reconstructed. *)
      let color = Array.make n 0 in
      (* 0 white, 1 gray, 2 black *)
      let result = ref None in
      let visit root =
        let frames = ref [ (root, ref (Digraph.succ g root)) ] in
        color.(root) <- 1;
        while !result = None && !frames <> [] do
          match !frames with
          | [] -> ()
          | (v, succs) :: rest -> (
              match !succs with
              | [] ->
                  color.(v) <- 2;
                  frames := rest
              | w :: ws ->
                  succs := ws;
                  if color.(w) = 1 then begin
                    (* cycle: the gray frames from w up to v *)
                    let path = List.map fst !frames in
                    let rec cut = function
                      | [] -> []
                      | x :: tail -> if x = w then [ x ] else x :: cut tail
                    in
                    result := Some (List.rev (cut path))
                  end
                  else if color.(w) = 0 then begin
                    color.(w) <- 1;
                    frames := (w, ref (Digraph.succ g w)) :: !frames
                  end)
        done
      in
      for v = 0 to n - 1 do
        if color.(v) = 0 && !result = None then visit v
      done;
      !result
