(** Shape classification of constraint graphs.

    The paper's three sufficient conditions key on the shape of the
    constraint graph:

    - {b Out-tree} (Section 5): weakly connected; one node of indegree zero;
      all other nodes of indegree one. (Theorem 1.)
    - {b Self-looping} (Section 6): every cycle has length 1, i.e. the graph
      is acyclic once self-loops are removed. (Theorem 2.) Every out-tree is
      self-looping.
    - {b Cyclic} (Section 7): has a cycle of length greater than 1.
      (Theorem 3 applies via layering.) *)

type shape =
  | Out_tree
  | Self_looping  (** Acyclic apart from self-loops, but not an out-tree. *)
  | Cyclic  (** Contains a cycle of length [> 1]. *)

val shape : 'a Digraph.t -> shape
(** Most specific shape of the graph. *)

val is_out_tree : 'a Digraph.t -> bool
val is_self_looping : 'a Digraph.t -> bool
(** True for out-trees as well (the class is inclusive). *)

val is_weakly_connected : 'a Digraph.t -> bool
(** Vacuously true for the empty graph. *)

val pp_shape : Format.formatter -> shape -> unit
val shape_to_string : shape -> string
