(** Topological structure of directed graphs.

    Provides acyclicity tests, topological orders, the paper's rank function
    (Section 5: rank of node [j] is [1 + max] rank over proper predecessors),
    and longest paths in DAGs (worst-case convergence step counts). *)

val is_acyclic : 'a Digraph.t -> bool
(** True iff the graph has no cycle; self-loops count as cycles. *)

val is_acyclic_ignoring_self_loops : 'a Digraph.t -> bool

val topological_order : 'a Digraph.t -> int list option
(** Kahn's algorithm; [None] when the graph is cyclic (self-loops included). *)

val ranks : 'a Digraph.t -> int array option
(** The paper's rank: [rank j = 1 + max { rank k | edge k -> j, k <> j }],
    with the max over an empty set taken as 0 (so sources have rank 1).
    Defined only when the graph is acyclic apart from self-loops; returns
    [None] otherwise. *)

val longest_path_lengths : 'a Digraph.t -> int array option
(** For a DAG (self-loops excluded must still be absent), the length in edges
    of the longest path {e ending} at each node. [None] on cyclic graphs. *)

val find_cycle : 'a Digraph.t -> int list option
(** A node sequence [v0; v1; ...; vk] with edges [v0->v1->...->vk] and
    [vk = v0]'s successor closing the cycle — concretely, edges exist between
    consecutive elements and from the last back to the first. [None] iff
    acyclic. A self-loop yields a singleton list. *)
