(** Strongly connected components (Tarjan's algorithm, iterative).

    Used by the fair-convergence checker: an infinite execution eventually
    stays inside one SCC of the transition graph, so convergence analysis
    reduces to per-SCC escape arguments. *)

type t = {
  count : int;  (** Number of components. *)
  component : int array;
      (** [component.(v)] is the id of [v]'s component. Ids are in
          topological order of the condensation: every edge [u -> w] with
          [component.(u) <> component.(w)] has
          [component.(u) < component.(w)]. *)
  members : int list array;  (** Nodes of each component. *)
}

val compute : 'a Digraph.t -> t

val is_trivial : t -> 'a Digraph.t -> int -> bool
(** A component is trivial iff it is a single node without a self-loop —
    i.e. it cannot sustain an infinite execution by itself. *)

val condensation : 'a Digraph.t -> t -> unit Digraph.t
(** The DAG of components (self-edges removed, parallel edges collapsed). *)
