type t = { count : int; component : int array; members : int list array }

(* Iterative Tarjan: explicit stacks so that state-space-sized graphs
   (hundreds of thousands of nodes) do not overflow the OCaml stack. *)
let compute g =
  let n = Digraph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp = Array.make n (-1) in
  let comp_count = ref 0 in
  let rev_members : int list list ref = ref [] in
  (* Explicit DFS: each frame is (node, remaining successors). *)
  let visit root =
    let frames = ref [ (root, ref (Digraph.succ g root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, succs) :: rest -> (
          match !succs with
          | w :: ws ->
              succs := ws;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                frames := (w, ref (Digraph.succ g w)) :: !frames
              end
              else if on_stack.(w) then
                lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
              frames := rest;
              (match rest with
              | (parent, _) :: _ ->
                  lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then begin
                (* v is the root of a component: pop the stack down to v. *)
                let members = ref [] in
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> continue := false
                  | w :: tail ->
                      stack := tail;
                      on_stack.(w) <- false;
                      comp.(w) <- !comp_count;
                      members := w :: !members;
                      if w = v then continue := false
                done;
                rev_members := !members :: !rev_members;
                incr comp_count
              end)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (* Tarjan emits components in reverse topological order already: a
     component is emitted only after all components it can reach. To get ids
     in reverse topological order (edges go from lower to higher id is the
     *forward* topological convention; Tarjan gives the opposite), renumber
     so that edges across components go from smaller to larger id. *)
  let count = !comp_count in
  let renumber i = count - 1 - i in
  Array.iteri (fun v c -> comp.(v) <- renumber c) comp;
  let members = Array.make count [] in
  List.iteri
    (fun emitted ms -> members.(renumber emitted) <- ms)
    (List.rev !rev_members);
  { count; component = comp; members }

let is_trivial t g node =
  match t.members.(t.component.(node)) with
  | [ v ] -> not (Digraph.has_self_loop g v)
  | _ -> false

let condensation g t =
  let seen = Hashtbl.create 64 in
  let dag = Digraph.create t.count in
  List.iter
    (fun (e : _ Digraph.edge) ->
      let cs = t.component.(e.src) and cd = t.component.(e.dst) in
      if cs <> cd && not (Hashtbl.mem seen (cs, cd)) then begin
        Hashtbl.add seen (cs, cd) ();
        Digraph.add_edge dag ~src:cs ~dst:cd ()
      end)
    (Digraph.edges g);
  dag
