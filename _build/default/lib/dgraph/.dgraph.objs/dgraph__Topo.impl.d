lib/dgraph/topo.ml: Array Digraph List Queue
