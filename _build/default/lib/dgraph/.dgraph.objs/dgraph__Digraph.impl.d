lib/dgraph/digraph.ml: Array Format List Printf
