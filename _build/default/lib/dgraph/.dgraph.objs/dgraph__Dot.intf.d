lib/dgraph/dot.mli: Digraph
