lib/dgraph/classify.mli: Digraph Format
