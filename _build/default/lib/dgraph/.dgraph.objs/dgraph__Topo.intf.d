lib/dgraph/topo.mli: Digraph
