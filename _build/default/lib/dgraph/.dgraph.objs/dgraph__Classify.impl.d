lib/dgraph/classify.ml: Array Digraph Format List Queue Topo
