lib/dgraph/scc.ml: Array Digraph Hashtbl List
