lib/dgraph/dot.ml: Buffer Digraph List Printf String
