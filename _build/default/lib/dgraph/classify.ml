type shape = Out_tree | Self_looping | Cyclic

let is_weakly_connected g =
  let n = Digraph.node_count g in
  if n = 0 then true
  else begin
    (* BFS over the underlying undirected graph. *)
    let seen = Array.make n false in
    let queue = Queue.create () in
    Queue.add 0 queue;
    seen.(0) <- true;
    let count = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      incr count;
      let push w =
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end
      in
      List.iter push (Digraph.succ g v);
      List.iter push (Digraph.pred g v)
    done;
    !count = n
  end

let is_out_tree g =
  let n = Digraph.node_count g in
  if n = 0 then false
  else
    let roots = ref 0 and ok = ref true in
    for i = 0 to n - 1 do
      match Digraph.in_degree g i with
      | 0 -> incr roots
      | 1 -> ()
      | _ -> ok := false
    done;
    !ok && !roots = 1 && is_weakly_connected g
(* n nodes, one root of indegree 0, others indegree 1, weakly connected:
   that is exactly n-1 edges forming a tree oriented away from the root. *)

let is_self_looping g = Topo.is_acyclic_ignoring_self_loops g

let shape g =
  if is_out_tree g then Out_tree
  else if is_self_looping g then Self_looping
  else Cyclic

let shape_to_string = function
  | Out_tree -> "out-tree"
  | Self_looping -> "self-looping"
  | Cyclic -> "cyclic"

let pp_shape ppf s = Format.pp_print_string ppf (shape_to_string s)
