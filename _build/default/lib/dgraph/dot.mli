(** Graphviz DOT export for inspection and documentation. *)

val to_dot :
  ?name:string ->
  ?node_label:(int -> string) ->
  ?edge_label:('a -> string) ->
  'a Digraph.t ->
  string
(** Render a graph as a [digraph { ... }] DOT document. Labels are escaped. *)
