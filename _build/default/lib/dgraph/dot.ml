let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(name = "g") ?node_label ?edge_label g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  for i = 0 to Digraph.node_count g - 1 do
    match node_label with
    | Some f ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"%s\"];\n" i (escape (f i)))
    | None -> Buffer.add_string buf (Printf.sprintf "  n%d;\n" i)
  done;
  List.iter
    (fun (e : _ Digraph.edge) ->
      match edge_label with
      | Some f ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" e.src e.dst
               (escape (f e.label)))
      | None ->
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" e.src e.dst))
    (Digraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
