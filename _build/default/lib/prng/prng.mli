(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    simulation, workload and experiment is reproducible from a seed. The
    generator is splitmix64 (Steele, Lea, Flood 2014): a tiny, fast,
    well-distributed generator whose state is a single [int64], which makes
    [split] and [copy] trivial and safe. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator determined by [seed]. Two
    generators created with the same seed produce the same stream. *)

val copy : t -> t
(** [copy g] is an independent generator that will produce the same future
    stream as [g]; advancing one does not affect the other. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    (with overwhelming probability) independent of the remainder of [g]'s.
    Use it to hand child components their own reproducible source. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound); [bound] must be positive.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float g bound] is uniform in [0, bound). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on an empty list. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g k n] returns [k] distinct values drawn
    uniformly from [0, n), in random order.
    @raise Invalid_argument if [k < 0 || k > n]. *)
