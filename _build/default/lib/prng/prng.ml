type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* splitmix64 output function: advance by the golden gamma, then mix. *)
let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = bits64 g in
  { state = seed }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Take the top bits (better distributed for splitmix64) and reduce by
     rejection to avoid modulo bias. 61 bits keep every intermediate value
     comfortably inside OCaml's 63-bit native int. *)
  let range = 1 lsl 61 in
  let limit = range - (range mod bound) in
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 3) in
    (* r is in [0, 2^61) *)
    if r < limit then r mod bound else go ()
  in
  go ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (bits64 g) 1L = 1L

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  (* 53 significant bits, matching a double's mantissa *)
  r /. 9007199254740992.0 *. bound

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Partial Fisher–Yates over 0..n-1, materialised lazily in a table so the
     cost is O(k) expected memory even for large n. *)
  let tbl = Hashtbl.create (2 * k) in
  let value_at i = match Hashtbl.find_opt tbl i with Some v -> v | None -> i in
  Array.init k (fun i ->
      let j = int_in g i (n - 1) in
      let vi = value_at i and vj = value_at j in
      Hashtbl.replace tbl j vi;
      Hashtbl.replace tbl i vj;
      vj)
