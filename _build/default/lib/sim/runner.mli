(** Executing programs under a daemon.

    Runs a compiled program step by step: at each step the daemon chooses
    among the enabled actions; execution stops when the [stop] predicate
    holds, when no action is enabled (a maximal finite computation), or when
    the step budget runs out. *)

type stop_reason =
  | Target_reached  (** [stop] held. *)
  | Terminal  (** No enabled action and [stop] did not hold. *)
  | Budget_exhausted  (** [max_steps] steps without reaching [stop]. *)

type outcome = {
  reason : stop_reason;
  steps : int;  (** Daemon invocations performed. *)
  final : Guarded.State.t;
  trace : Trace.t option;
}

val run :
  ?record_trace:bool ->
  ?max_steps:int ->
  daemon:Daemon.t ->
  init:Guarded.State.t ->
  stop:(Guarded.State.t -> bool) ->
  Guarded.Compile.program ->
  outcome
(** [max_steps] defaults to [100_000]. [init] is not mutated. [stop] is
    checked before every step, so an [init] that satisfies it yields 0
    steps. *)

val converged : outcome -> bool
(** [reason = Target_reached]. *)

val pp_reason : Format.formatter -> stop_reason -> unit
