(** Repeated-trial convergence experiments.

    The standard shape of the paper-derived experiments: start from a state
    produced by a fault, run the program under a daemon until the invariant
    holds, record how many steps that took; repeat. *)

type result = {
  steps : int array;  (** Step counts of the converged trials. *)
  failures : int;  (** Trials that hit the budget or a terminal state. *)
  summary : Stats.summary option;  (** [None] when nothing converged. *)
}

val convergence_trials :
  ?max_steps:int ->
  rng:Prng.t ->
  trials:int ->
  daemon:(Prng.t -> Daemon.t) ->
  prepare:(Prng.t -> Guarded.State.t) ->
  stop:(Guarded.State.t -> bool) ->
  Guarded.Compile.program ->
  result
(** Each trial gets its own [Prng.split] of [rng] (so trials are independent
    and the whole experiment is reproducible from one seed) and a fresh
    daemon built from that split. [prepare] produces the faulty initial
    state. *)

val pp_result : Format.formatter -> result -> unit
