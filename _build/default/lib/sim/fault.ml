module State = Guarded.State
module Var = Guarded.Var
module Domain = Guarded.Domain
module Env = Guarded.Env

type t = { name : string; inject : Prng.t -> Guarded.State.t -> unit }

let random_value rng domain =
  match (domain : Domain.t) with
  | Bool -> Prng.int rng 2
  | Range { lo; hi } -> Prng.int_in rng lo hi
  | Enum { labels; _ } -> Prng.int rng (Array.length labels)

let corrupt_of_array name vars ~k =
  {
    name;
    inject =
      (fun rng s ->
        let n = Array.length vars in
        let k = min k n in
        let picks = Prng.sample_without_replacement rng k n in
        Array.iter
          (fun i ->
            let v = vars.(i) in
            State.set s v (random_value rng (Var.domain v)))
          picks);
  }

let corrupt env ~k =
  corrupt_of_array (Printf.sprintf "corrupt-%d" k) (Env.vars env) ~k

let corrupt_vars vars ~k =
  corrupt_of_array
    (Printf.sprintf "corrupt-%d-of-%d" k (List.length vars))
    (Array.of_list vars) ~k

let scramble env =
  let vars = Env.vars env in
  {
    name = "scramble";
    inject =
      (fun rng s ->
        Array.iter
          (fun v -> State.set s v (random_value rng (Var.domain v)))
          vars);
  }

let reset_vars bindings =
  {
    name = "reset";
    inject = (fun _ s -> List.iter (fun (v, x) -> State.set s v x) bindings);
  }

let compose name faults =
  { name; inject = (fun rng s -> List.iter (fun f -> f.inject rng s) faults) }

let pp ppf f = Format.pp_print_string ppf f.name
