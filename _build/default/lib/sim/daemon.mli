(** Daemons (schedulers).

    The paper's computations are fair maximal interleavings chosen by an
    abstract adversary; a daemon decides, at each step, which enabled
    action(s) execute. Central daemons pick exactly one; the distributed
    daemon picks a set of mutually non-interfering actions and executes them
    simultaneously (their effect is then equal to executing them in any
    order, so distributed executions are a subset of interleavings). *)

type context = {
  program : Guarded.Compile.program;
  step : int;  (** 0-based step counter. *)
  state : Guarded.State.t;  (** Current (pre) state; must not be mutated. *)
  enabled : int list;  (** Indices of enabled actions; never empty. *)
}

type t = { name : string; choose : context -> int list }
(** [choose] returns a non-empty sublist of [ctx.enabled]; a singleton for
    central daemons. *)

val first_enabled : t
(** Always the lowest-index enabled action. Deterministic and maximally
    unfair to later actions. *)

val round_robin : unit -> t
(** Cycles a cursor through action indices; weakly fair. Fresh mutable
    cursor per call. *)

val random : Prng.t -> t
(** Uniform among enabled actions; fair with probability 1. *)

val greedy : name:string -> (Guarded.State.t -> int) -> t
(** [greedy ~name score] picks the enabled action whose post-state maximizes
    [score] (ties broken by lowest index). With [score] = "how far from the
    invariant", this is an adversarial daemon that prolongs convergence. *)

val distributed : Prng.t -> t
(** A maximal set of mutually non-interfering enabled actions, built greedily
    in random order. *)

val pp : Format.formatter -> t -> unit
