lib/sim/trace.ml: Format Guarded List String
