lib/sim/fault.ml: Array Format Guarded List Printf Prng
