lib/sim/experiment.mli: Daemon Format Guarded Prng Stats
