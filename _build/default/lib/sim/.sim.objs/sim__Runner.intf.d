lib/sim/runner.mli: Daemon Format Guarded Trace
