lib/sim/experiment.ml: Array Format List Printf Prng Runner Stats
