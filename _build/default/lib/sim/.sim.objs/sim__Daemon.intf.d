lib/sim/daemon.mli: Format Guarded Prng
