lib/sim/runner.ml: Array Daemon Format Guarded List Trace
