lib/sim/daemon.ml: Array Format Guarded List Prng
