lib/sim/fault.mli: Format Guarded Prng
