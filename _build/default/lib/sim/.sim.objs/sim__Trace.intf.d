lib/sim/trace.mli: Format Guarded
