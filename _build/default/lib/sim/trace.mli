(** Execution traces.

    A recorded computation: the initial state followed by the actions taken
    at each step and the states they produced. Distributed-daemon steps may
    carry several action names. *)

type entry = { step : int; actions : string list; state : Guarded.State.t }

type t

val create : Guarded.State.t -> t
(** Start a trace at the given initial state (copied). *)

val record : t -> actions:string list -> Guarded.State.t -> unit
(** Append a step (the state is copied). *)

val initial : t -> Guarded.State.t
val entries : t -> entry list
(** In execution order; does not include the initial state. *)

val length : t -> int
(** Number of recorded steps. *)

val states : t -> Guarded.State.t list
(** Initial state followed by each post-state. *)

val pp : Guarded.Env.t -> Format.formatter -> t -> unit
