module Compile = Guarded.Compile
module Action = Guarded.Action

type context = {
  program : Guarded.Compile.program;
  step : int;
  state : Guarded.State.t;
  enabled : int list;
}

type t = { name : string; choose : context -> int list }

let first_enabled =
  {
    name = "first-enabled";
    choose =
      (fun ctx ->
        match ctx.enabled with
        | a :: _ -> [ a ]
        | [] -> invalid_arg "Daemon: empty enabled set");
  }

let round_robin () =
  let cursor = ref 0 in
  {
    name = "round-robin";
    choose =
      (fun ctx ->
        let n = Array.length ctx.program.Compile.actions in
        let rec find k =
          if k >= n then invalid_arg "Daemon: empty enabled set"
          else
            let a = (!cursor + k) mod n in
            if List.mem a ctx.enabled then begin
              cursor := (a + 1) mod n;
              [ a ]
            end
            else find (k + 1)
        in
        find 0);
  }

let random rng =
  {
    name = "random";
    choose =
      (fun ctx ->
        [ Prng.pick_list rng ctx.enabled ]);
  }

let greedy ~name score =
  {
    name;
    choose =
      (fun ctx ->
        let best = ref (-1) and best_score = ref min_int in
        List.iter
          (fun a ->
            let post = ctx.program.Compile.actions.(a).apply ctx.state in
            let s = score post in
            if s > !best_score then begin
              best_score := s;
              best := a
            end)
          ctx.enabled;
        if !best < 0 then invalid_arg "Daemon: empty enabled set";
        [ !best ]);
  }

let distributed rng =
  {
    name = "distributed";
    choose =
      (fun ctx ->
        let order = Array.of_list ctx.enabled in
        Prng.shuffle_in_place rng order;
        let chosen = ref [] in
        Array.iter
          (fun a ->
            let act = ctx.program.Compile.actions.(a).source in
            let conflicts =
              List.exists
                (fun b ->
                  Action.interferes act
                    ctx.program.Compile.actions.(b).source)
                !chosen
            in
            if not conflicts then chosen := a :: !chosen)
          order;
        List.rev !chosen);
  }

let pp ppf d = Format.pp_print_string ppf d.name
