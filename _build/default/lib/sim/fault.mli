(** Fault injection.

    Section 3 of the paper views every fault class as actions that change
    the program state; the fault span [T] is the set of states those actions
    can produce. For stabilizing programs [T = true]: any assignment of
    in-domain values. The injectors below mutate a state in place and keep
    every variable inside its domain (the domains {e define} the state
    space — a value outside every domain is not a state of the program). *)

type t = { name : string; inject : Prng.t -> Guarded.State.t -> unit }

val corrupt : Guarded.Env.t -> k:int -> t
(** Pick [min k var_count] distinct variables; set each to a uniformly
    random value of its domain (possibly the current one). *)

val corrupt_vars : Guarded.Var.t list -> k:int -> t
(** Same, but drawing only from the given variables — e.g. the variables of
    [k] chosen processes. *)

val scramble : Guarded.Env.t -> t
(** Replace the whole state by a uniformly random one: the harshest fault
    the paper's model admits, and the standard initial condition for
    stabilization experiments. *)

val reset_vars : (Guarded.Var.t * int) list -> t
(** Deterministically force the given variables to the given values —
    models a crash-and-restart that reinitializes part of a process. *)

val compose : string -> t list -> t
(** Apply each fault in order. *)

val pp : Format.formatter -> t -> unit
