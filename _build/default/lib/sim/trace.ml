module State = Guarded.State

type entry = { step : int; actions : string list; state : Guarded.State.t }

type t = {
  init : Guarded.State.t;
  mutable rev_entries : entry list;
  mutable count : int;
}

let create init = { init = State.copy init; rev_entries = []; count = 0 }

let record t ~actions state =
  t.rev_entries <-
    { step = t.count; actions; state = State.copy state } :: t.rev_entries;
  t.count <- t.count + 1

let initial t = t.init
let entries t = List.rev t.rev_entries
let length t = t.count
let states t = t.init :: List.map (fun e -> e.state) (entries t)

let pp env ppf t =
  Format.fprintf ppf "@[<v>start: %a@," (State.pp env) t.init;
  List.iter
    (fun e ->
      Format.fprintf ppf "%4d. [%s] -> %a@," e.step
        (String.concat ", " e.actions)
        (State.pp env) e.state)
    (entries t);
  Format.fprintf ppf "@]"
