module State = Guarded.State
module Compile = Guarded.Compile

type stop_reason = Target_reached | Terminal | Budget_exhausted

type outcome = {
  reason : stop_reason;
  steps : int;
  final : Guarded.State.t;
  trace : Trace.t option;
}

let converged o = o.reason = Target_reached

let pp_reason ppf = function
  | Target_reached -> Format.pp_print_string ppf "target reached"
  | Terminal -> Format.pp_print_string ppf "terminal state"
  | Budget_exhausted -> Format.pp_print_string ppf "budget exhausted"

let run ?(record_trace = false) ?(max_steps = 100_000) ~daemon ~init ~stop
    (cp : Compile.program) =
  let state = State.copy init in
  let scratch = State.copy init in
  let trace = if record_trace then Some (Trace.create init) else None in
  let rec loop steps =
    if stop state then { reason = Target_reached; steps; final = state; trace }
    else if steps >= max_steps then
      { reason = Budget_exhausted; steps; final = state; trace }
    else
      match Compile.enabled_indices cp state with
      | [] -> { reason = Terminal; steps; final = state; trace }
      | enabled ->
          let ctx =
            { Daemon.program = cp; step = steps; state; enabled }
          in
          let chosen = daemon.Daemon.choose ctx in
          (* Simultaneous execution: evaluate all chosen actions against the
             same pre-state. The daemon guarantees non-interference, so the
             writes commute. *)
          (match chosen with
          | [ a ] ->
              cp.actions.(a).apply_into state scratch;
              State.blit ~src:scratch ~dst:state
          | _ ->
              State.blit ~src:state ~dst:scratch;
              List.iter
                (fun a ->
                  let post = cp.actions.(a).apply state in
                  (* copy only the variables this action writes *)
                  Guarded.Var.Set.iter
                    (fun v ->
                      State.set_index scratch (Guarded.Var.index v)
                        (State.get_index post (Guarded.Var.index v)))
                    (Guarded.Action.writes cp.actions.(a).source))
                chosen;
              State.blit ~src:scratch ~dst:state);
          (match trace with
          | Some t ->
              let names =
                List.map
                  (fun a -> Guarded.Action.name cp.actions.(a).source)
                  chosen
              in
              Trace.record t ~actions:names state
          | None -> ());
          loop (steps + 1)
  in
  loop 0
