type result = {
  steps : int array;
  failures : int;
  summary : Stats.summary option;
}

let convergence_trials ?(max_steps = 100_000) ~rng ~trials ~daemon ~prepare
    ~stop program =
  let converged = ref [] in
  let failures = ref 0 in
  for _ = 1 to trials do
    let trial_rng = Prng.split rng in
    let init = prepare trial_rng in
    let d = daemon trial_rng in
    let outcome =
      Runner.run ~max_steps ~daemon:d ~init ~stop program
    in
    if Runner.converged outcome then
      converged := outcome.Runner.steps :: !converged
    else incr failures
  done;
  let steps = Array.of_list (List.rev !converged) in
  let summary =
    if Array.length steps = 0 then None else Some (Stats.summarize_ints steps)
  in
  { steps; failures = !failures; summary }

let pp_result ppf r =
  match r.summary with
  | None -> Format.fprintf ppf "no trial converged (%d failures)" r.failures
  | Some s ->
      Format.fprintf ppf "%a%s" Stats.pp_summary s
        (if r.failures > 0 then Printf.sprintf " (%d failures)" r.failures
         else "")
