(** Closure checking (Section 3 of the paper).

    A state predicate [R] is closed in a program iff every action preserves
    [R]: from any in-domain state where the action is enabled and [R] holds,
    execution yields a state where [R] holds. These checks are exhaustive
    over an enumerated state space, so a success is a proof for that
    instance and a failure carries a concrete counterexample step.

    The optional [given] hypothesis restricts the check to states satisfying
    it — Theorem 3's obligations have the form "preserves [c] {e whenever
    all constraints in lower layers hold}". *)

type violation = {
  pre : Guarded.State.t;
  action : Guarded.Action.t;
  post : Guarded.State.t;
}

val pp_violation : Guarded.Env.t -> Format.formatter -> violation -> unit

val action_preserves :
  ?given:(Guarded.State.t -> bool) ->
  Space.t ->
  Guarded.Compile.action ->
  pred:(Guarded.State.t -> bool) ->
  (unit, violation) result
(** Does this action preserve [pred] (under hypothesis [given])? *)

val program_closed :
  ?given:(Guarded.State.t -> bool) ->
  Space.t ->
  Guarded.Compile.program ->
  pred:(Guarded.State.t -> bool) ->
  (unit, violation) result
(** Is [pred] closed under every action of the program? Returns the first
    violating step otherwise. *)
