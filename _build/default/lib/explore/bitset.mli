(** Fixed-capacity bit sets over [0 .. n-1], used to mark visited /
    region membership during state-space exploration. *)

type t

val create : int -> t
(** All bits clear. @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val cardinal : t -> int
val iter : t -> (int -> unit) -> unit
(** Ascending order of members. *)

val to_list : t -> int list
val for_all_members : t -> (int -> bool) -> bool
val copy : t -> t
