module State = Guarded.State
module Compile = Guarded.Compile

type stats = { region_states : int; worst_case_steps : int option }

type failure =
  | Deadlock of Guarded.State.t
  | Livelock of Guarded.State.t list

type verdict =
  | Converges of stats
  | Fails of failure
  | Unknown of Guarded.State.t list

(* The region of interest: states reachable from [from] where [target] does
   not hold, as (membership test, member count, induced graph pieces). *)
let build_region tsys ~from ~target =
  let space = Tsys.space tsys in
  let roots = Space.satisfying space from in
  let reach = Tsys.reachable tsys roots in
  let target_set = Bitset.create (Space.size space) in
  Space.iter space (fun id s -> if target s then Bitset.add target_set id);
  let member id = Bitset.mem reach id && not (Bitset.mem target_set id) in
  let graph, node_to_state, state_to_node =
    Tsys.region_graph_full tsys ~member
  in
  (graph, node_to_state, state_to_node)

let find_deadlock tsys node_to_state =
  let space = Tsys.space tsys in
  let found = ref None in
  Array.iter
    (fun id ->
      if !found = None && Tsys.is_terminal tsys id then
        found := Some (Deadlock (Space.decode space id)))
    node_to_state;
  !found

let check_unfair tsys ~from ~target =
  let space = Tsys.space tsys in
  let graph, node_to_state, _ = build_region tsys ~from ~target in
  match find_deadlock tsys node_to_state with
  | Some f -> Error f
  | None -> (
      match Dgraph.Topo.find_cycle graph with
      | Some nodes ->
          Error
            (Livelock
               (List.map (fun v -> Space.decode space node_to_state.(v)) nodes))
      | None ->
          let region_states = Array.length node_to_state in
          let worst =
            if region_states = 0 then 0
            else
              match Dgraph.Topo.longest_path_lengths graph with
              | Some dist -> Array.fold_left max 0 dist + 1
              | None -> assert false (* acyclic: find_cycle returned None *)
          in
          Ok { region_states; worst_case_steps = Some worst })

(* Weak-fairness escape criterion for one SCC: an action enabled at every
   state of the component whose execution always leaves the component. *)
let scc_has_uniform_exit tsys state_to_node (scc : Dgraph.Scc.t) comp members
    node_to_state =
  let space = Tsys.space tsys in
  let cp = Tsys.program tsys in
  let post = State.make (Space.env space) in
  let in_same_component dst_id =
    let node = state_to_node dst_id in
    node >= 0 && scc.Dgraph.Scc.component.(node) = comp
  in
  let action_works (ca : Compile.action) =
    List.for_all
      (fun node ->
        let id = node_to_state.(node) in
        let s = Space.decode space id in
        ca.enabled s
        &&
        begin
          ca.apply_into s post;
          not (in_same_component (Space.encode space post))
        end)
      members
  in
  Array.exists action_works cp.actions

let check_fair tsys ~from ~target =
  match check_unfair tsys ~from ~target with
  | Ok stats -> Converges stats
  | Error (Deadlock _ as f) -> Fails f
  | Error (Livelock _) -> (
      let space = Tsys.space tsys in
      let graph, node_to_state, state_to_node =
        build_region tsys ~from ~target
      in
      match find_deadlock tsys node_to_state with
      | Some f -> Fails f
      | None ->
          let scc = Dgraph.Scc.compute graph in
          let bad = ref None in
          for comp = 0 to scc.Dgraph.Scc.count - 1 do
            if !bad = None then begin
              let members = scc.Dgraph.Scc.members.(comp) in
              let nontrivial =
                match members with
                | [ v ] -> Dgraph.Digraph.has_self_loop graph v
                | _ -> true
              in
              if
                nontrivial
                && not
                     (scc_has_uniform_exit tsys state_to_node scc comp members
                        node_to_state)
              then bad := Some members
            end
          done;
          (match !bad with
          | Some members ->
              let sample =
                List.filteri (fun i _ -> i < 10) members
                |> List.map (fun v -> Space.decode space node_to_state.(v))
              in
              Unknown sample
          | None ->
              Converges
                {
                  region_states = Array.length node_to_state;
                  worst_case_steps = None;
                }))

let pp_failure env ppf = function
  | Deadlock s ->
      Format.fprintf ppf "@[<v>deadlock outside target at %a@]" (State.pp env)
        s
  | Livelock states ->
      Format.fprintf ppf "@[<v>livelock outside target:@,%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut (State.pp env))
        states

let pp_verdict env ppf = function
  | Converges { region_states; worst_case_steps } ->
      Format.fprintf ppf "converges (region %d states%s)" region_states
        (match worst_case_steps with
        | Some w -> Printf.sprintf ", worst case %d steps" w
        | None -> ", fair only")
  | Fails f -> pp_failure env ppf f
  | Unknown _ -> Format.pp_print_string ppf "unknown (fair criterion failed)"
