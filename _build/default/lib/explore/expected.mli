(** Expected convergence times under the uniform random daemon.

    Treat the program as an absorbing Markov chain: in every non-target
    state the daemon picks one of the enabled actions uniformly at random;
    target states absorb. The expected number of steps to absorption
    satisfies

    [E(s) = 0] if [target s], else [E(s) = 1 + avg over successors E(s')],

    which value iteration solves to any accuracy. This gives an exact
    analytical counterpart to the simulation estimates — experiment E12
    cross-validates the two. *)

type failure =
  | Unreachable of Guarded.State.t
      (** This state cannot reach the target at all. *)
  | Not_converged of float
      (** Value iteration still moving by this delta after [max_iters]. *)

val steps :
  ?epsilon:float ->
  ?max_iters:int ->
  Tsys.t ->
  target:(Guarded.State.t -> bool) ->
  (float array, failure) result
(** Expected steps per state id. [epsilon] defaults to [1e-9] (sup-norm
    stopping threshold), [max_iters] to [1_000_000]. *)

val mean_from :
  ?epsilon:float ->
  ?max_iters:int ->
  Tsys.t ->
  from:(Guarded.State.t -> bool) ->
  target:(Guarded.State.t -> bool) ->
  (float, failure) result
(** Expected steps averaged uniformly over the states satisfying [from] —
    the analytic analogue of a scramble-then-recover experiment. *)
