type t = { bits : Bytes.t; n : int; mutable card : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n; card = 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if b land mask = 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (b lor mask));
    t.card <- t.card + 1
  end

let remove t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if b land mask <> 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (b land lnot mask land 0xff));
    t.card <- t.card - 1
  end

let cardinal t = t.card

let iter t f =
  for i = 0 to t.n - 1 do
    if Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0 then
      f i
  done

let to_list t =
  let acc = ref [] in
  iter t (fun i -> acc := i :: !acc);
  List.rev !acc

let for_all_members t p =
  let ok = ref true in
  (try
     iter t (fun i -> if not (p i) then raise Exit)
   with Exit -> ok := false);
  !ok

let copy t = { bits = Bytes.copy t.bits; n = t.n; card = t.card }
