module State = Guarded.State

type failure = Unreachable of Guarded.State.t | Not_converged of float

let steps ?(epsilon = 1e-9) ?(max_iters = 1_000_000) tsys ~target =
  let space = Tsys.space tsys in
  let n = Tsys.state_count tsys in
  let is_target = Bitset.create n in
  Space.iter space (fun id s -> if target s then Bitset.add is_target id);
  (* Backward reachability of the target via reverse edges. *)
  let preds = Array.make n [] in
  for id = 0 to n - 1 do
    Tsys.iter_succ tsys id (fun ~action:_ ~dst -> preds.(dst) <- id :: preds.(dst))
  done;
  let can_reach = Bitset.create n in
  let queue = Queue.create () in
  Bitset.iter is_target (fun id ->
      Bitset.add can_reach id;
      Queue.add id queue);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    List.iter
      (fun p ->
        if not (Bitset.mem can_reach p) then begin
          Bitset.add can_reach p;
          Queue.add p queue
        end)
      preds.(id)
  done;
  let stuck = ref None in
  for id = 0 to n - 1 do
    if !stuck = None && not (Bitset.mem can_reach id) then stuck := Some id
  done;
  match !stuck with
  | Some id -> Error (Unreachable (Space.decode space id))
  | None ->
      (* Gauss–Seidel value iteration. *)
      let value = Array.make n 0.0 in
      let delta = ref infinity in
      let iters = ref 0 in
      while !delta > epsilon && !iters < max_iters do
        delta := 0.0;
        for id = 0 to n - 1 do
          if not (Bitset.mem is_target id) then begin
            let sum = ref 0.0 and deg = ref 0 in
            Tsys.iter_succ tsys id (fun ~action:_ ~dst ->
                sum := !sum +. value.(dst);
                incr deg);
            (* [deg = 0] outside the target would be a deadlock, which
               backward reachability already ruled out. *)
            let v = 1.0 +. (!sum /. float_of_int !deg) in
            let d = abs_float (v -. value.(id)) in
            if d > !delta then delta := d;
            value.(id) <- v
          end
        done;
        incr iters
      done;
      if !delta > epsilon then Error (Not_converged !delta) else Ok value

let mean_from ?epsilon ?max_iters tsys ~from ~target =
  match steps ?epsilon ?max_iters tsys ~target with
  | Error f -> Error f
  | Ok value ->
      let space = Tsys.space tsys in
      let sum = ref 0.0 and count = ref 0 in
      Space.iter space (fun id s ->
          if from s then begin
            sum := !sum +. value.(id);
            incr count
          end);
      if !count = 0 then Ok 0.0 else Ok (!sum /. float_of_int !count)
