lib/explore/tsys.ml: Array Bitset Dgraph Guarded List Queue Space
