lib/explore/bitset.mli:
