lib/explore/expected.ml: Array Bitset Guarded List Queue Space Tsys
