lib/explore/expected.mli: Guarded Tsys
