lib/explore/convergence.ml: Array Bitset Dgraph Format Guarded List Printf Space Tsys
