lib/explore/space.ml: Array Guarded List
