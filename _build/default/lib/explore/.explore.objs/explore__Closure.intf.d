lib/explore/closure.mli: Format Guarded Space
