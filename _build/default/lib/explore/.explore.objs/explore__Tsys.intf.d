lib/explore/tsys.mli: Bitset Dgraph Guarded Space
