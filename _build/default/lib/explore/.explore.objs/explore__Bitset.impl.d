lib/explore/bitset.ml: Bytes Char List
