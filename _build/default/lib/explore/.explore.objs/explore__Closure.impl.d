lib/explore/closure.ml: Array Format Guarded Space
