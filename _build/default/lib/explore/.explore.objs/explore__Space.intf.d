lib/explore/space.mli: Guarded
