lib/explore/convergence.mli: Format Guarded Tsys
