type guard = State.t -> bool

type action = {
  index : int;
  source : Action.t;
  enabled : guard;
  apply : State.t -> State.t;
  apply_into : State.t -> State.t -> unit;
}

type program = { source : Program.t; actions : action array }

let rec num (e : Expr.num) : State.t -> int =
  match e with
  | Const n -> fun _ -> n
  | Var v ->
      let i = Var.index v in
      fun s -> State.get_index s i
  | Neg a ->
      let fa = num a in
      fun s -> -fa s
  | Add (a, b) ->
      let fa = num a and fb = num b in
      fun s -> fa s + fb s
  | Sub (a, b) ->
      let fa = num a and fb = num b in
      fun s -> fa s - fb s
  | Mul (a, b) ->
      let fa = num a and fb = num b in
      fun s -> fa s * fb s
  | Div (a, b) ->
      let fa = num a and fb = num b in
      fun s -> fa s / fb s
  | Mod (a, b) ->
      let fa = num a and fb = num b in
      fun s -> fa s mod fb s
  | Min (a, b) ->
      let fa = num a and fb = num b in
      fun s -> min (fa s) (fb s)
  | Max (a, b) ->
      let fa = num a and fb = num b in
      fun s -> max (fa s) (fb s)
  | Ite (c, a, b) ->
      let fc = pred c and fa = num a and fb = num b in
      fun s -> if fc s then fa s else fb s

and pred (b : Expr.boolean) : guard =
  match b with
  | True -> fun _ -> true
  | False -> fun _ -> false
  | Cmp (c, x, y) -> (
      let fx = num x and fy = num y in
      match c with
      | Eq -> fun s -> fx s = fy s
      | Ne -> fun s -> fx s <> fy s
      | Lt -> fun s -> fx s < fy s
      | Le -> fun s -> fx s <= fy s
      | Gt -> fun s -> fx s > fy s
      | Ge -> fun s -> fx s >= fy s)
  | Not inner ->
      let f = pred inner in
      fun s -> not (f s)
  | And (x, y) ->
      let fx = pred x and fy = pred y in
      fun s -> fx s && fy s
  | Or (x, y) ->
      let fx = pred x and fy = pred y in
      fun s -> fx s || fy s
  | Implies (x, y) ->
      let fx = pred x and fy = pred y in
      fun s -> (not (fx s)) || fy s
  | Iff (x, y) ->
      let fx = pred x and fy = pred y in
      fun s -> fx s = fy s

let action ~index (a : Action.t) : action =
  let enabled = pred (Action.guard a) in
  let compiled_assigns =
    List.map
      (fun (v, e) ->
        let f = num e in
        let i = Var.index v in
        let d = Var.domain v in
        (v, i, d, f))
      (Action.assigns a)
    |> Array.of_list
  in
  let n_assigns = Array.length compiled_assigns in
  let scratch = Array.make (max 1 n_assigns) 0 in
  let eval_rhs src =
    for k = 0 to n_assigns - 1 do
      let v, _, d, f = compiled_assigns.(k) in
      let x = f src in
      if not (Domain.mem d x) then raise (State.Domain_violation (v, x));
      scratch.(k) <- x
    done
  in
  let apply_into src dst =
    eval_rhs src;
    State.blit ~src ~dst;
    for k = 0 to n_assigns - 1 do
      let _, i, _, _ = compiled_assigns.(k) in
      State.set_index dst i scratch.(k)
    done
  in
  let apply src =
    eval_rhs src;
    let dst = State.copy src in
    for k = 0 to n_assigns - 1 do
      let _, i, _, _ = compiled_assigns.(k) in
      State.set_index dst i scratch.(k)
    done;
    dst
  in
  { index; source = a; enabled; apply; apply_into }

let program (p : Program.t) : program =
  let actions =
    Array.mapi (fun index a -> action ~index a) (Program.actions p)
  in
  { source = p; actions }

let enabled_indices cp s =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if cp.actions.(i).enabled s then i :: acc else acc)
  in
  go (Array.length cp.actions - 1) []

let any_enabled cp s = Array.exists (fun a -> a.enabled s) cp.actions
