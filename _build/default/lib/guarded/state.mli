(** Program states.

    A state assigns to each variable of an environment a value of its domain
    (Section 2 of the paper). States are dense int arrays indexed by
    {!Var.index}; they are cheap to copy, hash and compare, which the model
    checker and the simulator both rely on.

    A state may deliberately hold out-of-domain values: fault injection
    (Section 3 views faults as actions that perturb the state) may corrupt a
    variable arbitrarily. [set] enforces domains; [set_corrupt] does not. *)

type t

exception Domain_violation of Var.t * int
(** Raised by [set] when the value is outside the variable's domain. *)

val make : Env.t -> t
(** State with every variable at the first value of its domain. *)

val init : Env.t -> (Var.t -> int) -> t
(** State computed per-variable. Values are domain-checked.
    @raise Domain_violation if the function returns an illegal value. *)

val of_list : Env.t -> (Var.t * int) list -> t
(** [make] then [set] each binding. *)

val get : t -> Var.t -> int
val set : t -> Var.t -> int -> unit
val set_corrupt : t -> Var.t -> int -> unit
(** Like [set] but skips the domain check; used by fault injectors. *)

val in_domain : Env.t -> t -> bool
(** Do all variables currently hold legal values? *)

val copy : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val get_index : t -> int -> int
(** Value at a raw slot index (compiled-code hot path). *)

val set_index : t -> int -> int -> unit
(** Unchecked write at a raw slot index (compiled-code hot path). *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with [src]'s contents; same environment assumed. *)

val dim : t -> int
(** Number of slots. *)

val to_array : t -> int array
(** Fresh snapshot of the underlying values. *)

val of_array : int array -> t
(** Wrap raw values (no domain check); takes ownership of the array. *)

val pp : Env.t -> Format.formatter -> t -> unit
(** Print as [{x=1, y=true, c.0=red, ...}] using domain notation. *)

val to_string : Env.t -> t -> string
