type num =
  | Const of int
  | Var of Var.t
  | Neg of num
  | Add of num * num
  | Sub of num * num
  | Mul of num * num
  | Div of num * num
  | Mod of num * num
  | Min of num * num
  | Max of num * num
  | Ite of boolean * num * num

and boolean =
  | True
  | False
  | Cmp of cmp * num * num
  | Not of boolean
  | And of boolean * boolean
  | Or of boolean * boolean
  | Implies of boolean * boolean
  | Iff of boolean * boolean

and cmp = Eq | Ne | Lt | Le | Gt | Ge

let int n = Const n
let var v = Var v
let tt = True
let ff = False
let bvar v = Cmp (Eq, Var v, Const 1)
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let ( mod ) a b = Mod (a, b)
let neg a = Neg a
let min_ a b = Min (a, b)
let max_ a b = Max (a, b)
let ite c a b = Ite (c, a, b)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Ne, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let not_ b = Not b
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let ( ==> ) a b = Implies (a, b)
let ( <=> ) a b = Iff (a, b)

let conj = function
  | [] -> True
  | x :: xs -> List.fold_left (fun acc b -> And (acc, b)) x xs

let disj = function
  | [] -> False
  | x :: xs -> List.fold_left (fun acc b -> Or (acc, b)) x xs

let forall xs f = conj (List.map f xs)
let exists xs f = disj (List.map f xs)

let eval_cmp c (a : int) (b : int) =
  match c with
  | Eq -> Stdlib.( = ) a b
  | Ne -> Stdlib.( <> ) a b
  | Lt -> Stdlib.( < ) a b
  | Le -> Stdlib.( <= ) a b
  | Gt -> Stdlib.( > ) a b
  | Ge -> Stdlib.( >= ) a b

let rec eval_num s = function
  | Const n -> n
  | Var v -> State.get s v
  | Neg a -> Stdlib.( - ) 0 (eval_num s a)
  | Add (a, b) -> Stdlib.( + ) (eval_num s a) (eval_num s b)
  | Sub (a, b) -> Stdlib.( - ) (eval_num s a) (eval_num s b)
  | Mul (a, b) -> Stdlib.( * ) (eval_num s a) (eval_num s b)
  | Div (a, b) -> Stdlib.( / ) (eval_num s a) (eval_num s b)
  | Mod (a, b) -> Stdlib.(mod) (eval_num s a) (eval_num s b)
  | Min (a, b) -> Stdlib.min (eval_num s a) (eval_num s b)
  | Max (a, b) -> Stdlib.max (eval_num s a) (eval_num s b)
  | Ite (c, a, b) -> if eval s c then eval_num s a else eval_num s b

and eval s = function
  | True -> true
  | False -> false
  | Cmp (c, a, b) -> eval_cmp c (eval_num s a) (eval_num s b)
  | Not b -> Stdlib.not (eval s b)
  | And (a, b) -> if eval s a then eval s b else false
  | Or (a, b) -> if eval s a then true else eval s b
  | Implies (a, b) -> if eval s a then eval s b else true
  | Iff (a, b) -> Stdlib.( = ) (eval s a) (eval s b)

let rec reads_num = function
  | Const _ -> Var.Set.empty
  | Var v -> Var.Set.singleton v
  | Neg a -> reads_num a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Min (a, b) | Max (a, b) ->
      Var.Set.union (reads_num a) (reads_num b)
  | Ite (c, a, b) ->
      Var.Set.union (reads c) (Var.Set.union (reads_num a) (reads_num b))

and reads = function
  | True | False -> Var.Set.empty
  | Cmp (_, a, b) -> Var.Set.union (reads_num a) (reads_num b)
  | Not b -> reads b
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
      Var.Set.union (reads a) (reads b)

let rec simplify_num e =
  match e with
  | Const _ | Var _ -> e
  | Neg a -> (
      match simplify_num a with
      | Const n -> Const (Stdlib.( - ) 0 n)
      | Neg inner -> inner
      | a' -> Neg a')
  | Add (a, b) -> (
      match (simplify_num a, simplify_num b) with
      | Const x, Const y -> Const (Stdlib.( + ) x y)
      | Const 0, e' | e', Const 0 -> e'
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (simplify_num a, simplify_num b) with
      | Const x, Const y -> Const (Stdlib.( - ) x y)
      | e', Const 0 -> e'
      | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
      match (simplify_num a, simplify_num b) with
      | Const x, Const y -> Const (Stdlib.( * ) x y)
      | Const 0, _ | _, Const 0 -> Const 0
      | Const 1, e' | e', Const 1 -> e'
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
      match (simplify_num a, simplify_num b) with
      | Const x, Const y when Stdlib.( <> ) y 0 -> Const (Stdlib.( / ) x y)
      | e', Const 1 -> e'
      | a', b' -> Div (a', b'))
  | Mod (a, b) -> (
      match (simplify_num a, simplify_num b) with
      | Const x, Const y when Stdlib.( <> ) y 0 -> Const (Stdlib.(mod) x y)
      | a', b' -> Mod (a', b'))
  | Min (a, b) -> (
      match (simplify_num a, simplify_num b) with
      | Const x, Const y -> Const (Stdlib.min x y)
      | a', b' -> Min (a', b'))
  | Max (a, b) -> (
      match (simplify_num a, simplify_num b) with
      | Const x, Const y -> Const (Stdlib.max x y)
      | a', b' -> Max (a', b'))
  | Ite (c, a, b) -> (
      match simplify c with
      | True -> simplify_num a
      | False -> simplify_num b
      | c' -> Ite (c', simplify_num a, simplify_num b))

and simplify b =
  match b with
  | True | False -> b
  | Cmp (c, a, bb) -> (
      match (simplify_num a, simplify_num bb) with
      | Const x, Const y -> if eval_cmp c x y then True else False
      | a', b' -> Cmp (c, a', b'))
  | Not inner -> (
      match simplify inner with
      | True -> False
      | False -> True
      | Not inner2 -> inner2
      | i -> Not i)
  | And (a, bb) -> (
      match (simplify a, simplify bb) with
      | True, e | e, True -> e
      | False, _ | _, False -> False
      | a', b' -> And (a', b'))
  | Or (a, bb) -> (
      match (simplify a, simplify bb) with
      | False, e | e, False -> e
      | True, _ | _, True -> True
      | a', b' -> Or (a', b'))
  | Implies (a, bb) -> (
      match (simplify a, simplify bb) with
      | False, _ -> True
      | True, e -> e
      | _, True -> True
      | a', b' -> Implies (a', b'))
  | Iff (a, bb) -> (
      match (simplify a, simplify bb) with
      | True, e | e, True -> e
      | False, e | e, False -> simplify (Not e)
      | a', b' -> Iff (a', b'))

let rec subst_num f = function
  | Const n -> Const n
  | Var v -> ( match f v with Some e -> e | None -> Var v)
  | Neg a -> Neg (subst_num f a)
  | Add (a, b) -> Add (subst_num f a, subst_num f b)
  | Sub (a, b) -> Sub (subst_num f a, subst_num f b)
  | Mul (a, b) -> Mul (subst_num f a, subst_num f b)
  | Div (a, b) -> Div (subst_num f a, subst_num f b)
  | Mod (a, b) -> Mod (subst_num f a, subst_num f b)
  | Min (a, b) -> Min (subst_num f a, subst_num f b)
  | Max (a, b) -> Max (subst_num f a, subst_num f b)
  | Ite (c, a, b) -> Ite (subst f c, subst_num f a, subst_num f b)

and subst f = function
  | True -> True
  | False -> False
  | Cmp (c, a, b) -> Cmp (c, subst_num f a, subst_num f b)
  | Not b -> Not (subst f b)
  | And (a, b) -> And (subst f a, subst f b)
  | Or (a, b) -> Or (subst f a, subst f b)
  | Implies (a, b) -> Implies (subst f a, subst f b)
  | Iff (a, b) -> Iff (subst f a, subst f b)

(* Printing with minimal parentheses: precedence levels, higher binds
   tighter. *)

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_num_prec prec ppf e =
  let paren p body =
    if Stdlib.( > ) prec p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Const n ->
      if Stdlib.( < ) n 0 then Format.fprintf ppf "(%d)" n
      else Format.fprintf ppf "%d" n
  | Var v -> Var.pp ppf v
  | Neg a ->
      (* self-delimiting so that "-(e)" and a negative literal "(-4)" stay
         distinguishable when re-parsed *)
      Format.fprintf ppf "-(%a)" (pp_num_prec 0) a
  | Add (a, b) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a + %a" (pp_num_prec 1) a (pp_num_prec 2) b)
  | Sub (a, b) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a - %a" (pp_num_prec 1) a (pp_num_prec 2) b)
  | Mul (a, b) ->
      paren 2 (fun ppf ->
          Format.fprintf ppf "%a * %a" (pp_num_prec 2) a (pp_num_prec 3) b)
  | Div (a, b) ->
      paren 2 (fun ppf ->
          Format.fprintf ppf "%a / %a" (pp_num_prec 2) a (pp_num_prec 3) b)
  | Mod (a, b) ->
      paren 2 (fun ppf ->
          Format.fprintf ppf "%a mod %a" (pp_num_prec 2) a (pp_num_prec 3) b)
  | Min (a, b) ->
      Format.fprintf ppf "min(%a, %a)" (pp_num_prec 0) a (pp_num_prec 0) b
  | Max (a, b) ->
      Format.fprintf ppf "max(%a, %a)" (pp_num_prec 0) a (pp_num_prec 0) b
  | Ite (c, a, b) ->
      Format.fprintf ppf "(if %a then %a else %a)" (pp_bool_prec 0) c
        (pp_num_prec 0) a (pp_num_prec 0) b

and pp_bool_prec prec ppf b =
  let paren p body =
    if Stdlib.( > ) prec p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match b with
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (c, x, y) ->
      Format.fprintf ppf "%a %s %a" (pp_num_prec 1) x (cmp_to_string c)
        (pp_num_prec 1) y
  | Not inner ->
      paren 4 (fun ppf -> Format.fprintf ppf "~%a" (pp_bool_prec 4) inner)
  | And (x, y) ->
      paren 3 (fun ppf ->
          Format.fprintf ppf "%a /\\ %a" (pp_bool_prec 3) x (pp_bool_prec 4) y)
  | Or (x, y) ->
      paren 2 (fun ppf ->
          Format.fprintf ppf "%a \\/ %a" (pp_bool_prec 2) x (pp_bool_prec 3) y)
  | Implies (x, y) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a => %a" (pp_bool_prec 2) x (pp_bool_prec 1) y)
  | Iff (x, y) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a <=> %a" (pp_bool_prec 2) x (pp_bool_prec 2) y)

let pp_num ppf e = pp_num_prec 0 ppf e
let pp ppf b = pp_bool_prec 0 ppf b
let num_to_string e = Format.asprintf "%a" pp_num e
let to_string b = Format.asprintf "%a" pp b
let equal_num (a : num) (b : num) = Stdlib.( = ) a b
let equal (a : boolean) (b : boolean) = Stdlib.( = ) a b
