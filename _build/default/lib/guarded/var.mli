(** Program variables.

    A variable is a name, a finite {!Domain.t}, and a dense index assigned by
    the {!Env} that owns it. The index is the variable's slot in every
    {!State.t} of that environment. *)

type t = private { name : string; index : int; domain : Domain.t }

val make : name:string -> index:int -> domain:Domain.t -> t
(** Used by {!Env}; client code obtains variables from {!Env.fresh}. *)

val name : t -> string
val index : t -> int
val domain : t -> Domain.t

val equal : t -> t -> bool
(** Equality by index (variables of the same environment are unique per
    index). *)

val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
