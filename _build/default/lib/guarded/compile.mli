(** Compilation of expressions and actions to closures.

    The AST representation in {!Expr} is what analyses need, but it is slow
    to interpret in the simulator's and model checker's hot paths. This pass
    translates expressions to OCaml closures over the raw state slots once,
    so that each evaluation costs no dispatch over constructors beyond the
    precompiled closure tree. Measured speedups are reported by the [micro]
    benchmarks. *)

type guard = State.t -> bool

type action = {
  index : int;  (** Position in the source program's action array. *)
  source : Action.t;
  enabled : guard;
  apply : State.t -> State.t;
      (** Functional execution; domain-checked like {!Action.execute}. *)
  apply_into : State.t -> State.t -> unit;
      (** [apply_into src dst] writes the post-state of [src] into [dst]
          (which must be a state of the same environment); [src] and [dst]
          may not alias. Avoids allocation in tight loops. *)
}

type program = { source : Program.t; actions : action array }

val num : Expr.num -> State.t -> int
(** Compile an integer expression. *)

val pred : Expr.boolean -> guard
(** Compile a predicate. *)

val action : index:int -> Action.t -> action
val program : Program.t -> program

val enabled_indices : program -> State.t -> int list
val any_enabled : program -> State.t -> bool
