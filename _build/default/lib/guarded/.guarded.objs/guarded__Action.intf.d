lib/guarded/action.mli: Expr Format State Var
