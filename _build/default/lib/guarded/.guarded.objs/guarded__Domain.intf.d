lib/guarded/domain.mli: Format
