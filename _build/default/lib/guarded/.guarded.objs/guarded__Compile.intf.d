lib/guarded/compile.mli: Action Expr Program State
