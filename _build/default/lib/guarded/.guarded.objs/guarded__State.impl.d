lib/guarded/state.ml: Array Domain Env Format Hashtbl List Var
