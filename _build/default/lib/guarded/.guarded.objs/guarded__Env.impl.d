lib/guarded/env.ml: Array Domain Format Hashtbl List Printf Var
