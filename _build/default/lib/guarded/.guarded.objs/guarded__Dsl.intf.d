lib/guarded/dsl.mli: Action Env Expr Format Program
