lib/guarded/var.ml: Domain Format Map Set String
