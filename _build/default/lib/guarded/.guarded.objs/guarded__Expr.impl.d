lib/guarded/expr.ml: Format List State Stdlib Var
