lib/guarded/program.mli: Action Env Format State
