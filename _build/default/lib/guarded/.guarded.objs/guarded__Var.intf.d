lib/guarded/var.mli: Domain Format Map Set
