lib/guarded/program.ml: Action Array Env Format Hashtbl List Printf String Var
