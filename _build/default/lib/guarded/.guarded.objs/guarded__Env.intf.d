lib/guarded/env.mli: Domain Format Var
