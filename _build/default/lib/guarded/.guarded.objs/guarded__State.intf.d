lib/guarded/state.mli: Env Format Var
