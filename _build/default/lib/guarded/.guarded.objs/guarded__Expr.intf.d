lib/guarded/expr.mli: Format State Var
