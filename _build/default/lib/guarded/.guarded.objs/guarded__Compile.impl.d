lib/guarded/compile.ml: Action Array Domain Expr List Program State Var
