lib/guarded/domain.ml: Array Format List Printf String
