lib/guarded/dsl.ml: Action Array Buffer Domain Env Expr Format List Printf Program String
