lib/guarded/action.ml: Expr Format List Printf State Var
