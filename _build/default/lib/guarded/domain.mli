(** Finite value domains.

    Every program variable ranges over a finite domain (Section 2 of the
    paper assumes "a predefined nonempty domain"; finiteness is what makes
    the closure and convergence requirements mechanically checkable).
    Values are represented as [int]s; a domain describes which ints are
    legal and how to print them. *)

type t =
  | Bool  (** {0, 1}, printed [false]/[true]. *)
  | Range of { lo : int; hi : int }
      (** Integers [lo..hi] inclusive; requires [lo <= hi]. *)
  | Enum of { name : string; labels : string array }
      (** Named finite type; value [i] is printed [labels.(i)]. *)

val bool : t

val range : int -> int -> t
(** [range lo hi] is the inclusive integer interval.
    @raise Invalid_argument if [hi < lo]. *)

val enum : string -> string list -> t
(** [enum name labels] is a named enumeration.
    @raise Invalid_argument if [labels] is empty. *)

val size : t -> int
(** Number of values in the domain. *)

val mem : t -> int -> bool
(** Is this int a legal value of the domain? *)

val values : t -> int list
(** All values, ascending. *)

val first : t -> int
(** Smallest legal value. *)

val value_to_string : t -> int -> string
(** Print a value in domain notation ([true], [red], [7], ...). Out-of-domain
    values print as [<n!>] so that corrupted states remain printable. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
