(** Concrete syntax for guarded-command programs.

    A small recursive-descent parser for notation close to the paper's, so
    programs can be written (and round-tripped through the pretty-printers)
    as text:

    {v
    program token-ring
    var x.0, x.1, x.2 : 0..3;
    begin
      inc: x.0 = x.2 /\ x.0 < 3 -> x.0 := x.0 + 1
      []
      cp1: x.0 <> x.1 -> x.1 := x.0
      []
      cp2: x.1 <> x.2 -> x.2 := x.1
    end
    v}

    Grammar (informal):
    - domains: [bool], [LO..HI], or [Name{lab1,lab2,...}];
    - boolean operators: [~  /\  \/  =>  <=>], comparisons
      [= <> < <= > >=], constants [true]/[false];
    - arithmetic: [+ - * / mod], [min(e,e)], [max(e,e)],
      [(if b then e else e)];
    - an action is [name: guard -> x, y := e1, e2] or [... -> skip];
      actions are separated by [[]];
    - variable names may contain dots ([c.0], [sn.3]).

    The printers in {!Expr}, {!Action} and {!Program} emit exactly this
    syntax; [parse_program (Program.to_string p)] reconstructs [p]. *)

type error = { line : int; column : int; message : string }

exception Parse_error of error

val pp_error : Format.formatter -> error -> unit

val parse_program : string -> (Env.t * Program.t, error) result
(** Parse a full [program ... begin ... end] text, creating a fresh
    environment from its [var] declarations. *)

val parse_program_exn : string -> Env.t * Program.t

val parse_bexp : Env.t -> string -> (Expr.boolean, error) result
(** Parse a predicate over an existing environment's variables — used for
    constraints and invariants. *)

val parse_bexp_exn : Env.t -> string -> Expr.boolean

val parse_num : Env.t -> string -> (Expr.num, error) result
val parse_num_exn : Env.t -> string -> Expr.num

val parse_action : Env.t -> string -> (Action.t, error) result
(** Parse a single [name: guard -> statement] action. *)

val parse_action_exn : Env.t -> string -> Action.t
