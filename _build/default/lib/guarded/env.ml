type t = {
  mutable rev_vars : Var.t list;
  mutable count : int;
  by_name : (string, Var.t) Hashtbl.t;
}

let create () = { rev_vars = []; count = 0; by_name = Hashtbl.create 16 }

let fresh t name domain =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Env.fresh: duplicate variable %S" name);
  let v = Var.make ~name ~index:t.count ~domain in
  t.rev_vars <- v :: t.rev_vars;
  t.count <- t.count + 1;
  Hashtbl.add t.by_name name v;
  v

let fresh_family t base n domain =
  Array.init n (fun i -> fresh t (Printf.sprintf "%s.%d" base i) domain)

let lookup t name = Hashtbl.find_opt t.by_name name

let lookup_exn t name =
  match lookup t name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Env.lookup_exn: unknown variable %S" name)

let var_count t = t.count
let vars t = Array.of_list (List.rev t.rev_vars)

let var_at t i =
  if i < 0 || i >= t.count then invalid_arg "Env.var_at: index out of range";
  (* rev_vars is newest-first; element for index i sits at position count-1-i *)
  List.nth t.rev_vars (t.count - 1 - i)

let state_space_size t =
  List.fold_left
    (fun acc v -> acc *. float_of_int (Domain.size (Var.domain v)))
    1.0 t.rev_vars

let pp ppf t =
  let vs = vars t in
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun v ->
      Format.fprintf ppf "var %s : %a@," (Var.name v) Domain.pp (Var.domain v))
    vs;
  Format.fprintf ppf "@]"
