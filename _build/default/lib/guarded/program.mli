(** Programs.

    A program is a finite set of variables and a finite set of actions
    (Section 2). The variables are those of the program's {!Env.t}; the
    actions are executed under some daemon (see [Sim.Daemon]) or explored
    exhaustively (see [Explore]). *)

type t

val make : name:string -> Env.t -> Action.t list -> t
(** Build a program. Action names must be distinct; every variable mentioned
    by an action must belong to the environment.
    @raise Invalid_argument if an action name repeats or a foreign variable
    is used. *)

val name : t -> string
val env : t -> Env.t
val actions : t -> Action.t array
val action_count : t -> int
val action_at : t -> int -> Action.t
val find_action : t -> string -> Action.t option

val enabled : t -> State.t -> Action.t list
(** All actions enabled in the state, in declaration order. *)

val enabled_indices : t -> State.t -> int list

val is_terminal : t -> State.t -> bool
(** No action enabled (a finite maximal computation may end here). *)

val add_actions : t -> Action.t list -> t
(** The augmented program [p ∪ q] of Section 3: same variables, extra
    actions. @raise Invalid_argument on name clashes. *)

val restrict : t -> (Action.t -> bool) -> t
(** Sub-program with only the actions satisfying the predicate. *)

val pp : Format.formatter -> t -> unit
(** Full paper-style listing: variable declarations then actions separated
    by [[]]. *)

val to_string : t -> string
