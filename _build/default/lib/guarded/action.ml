type t = {
  name : string;
  guard : Expr.boolean;
  assigns : (Var.t * Expr.num) list;
}

let make ~name ~guard assigns =
  let rec check_distinct = function
    | [] -> ()
    | (v, _) :: rest ->
        if List.exists (fun (w, _) -> Var.equal v w) rest then
          invalid_arg
            (Printf.sprintf "Action.make %S: duplicate assignment to %s" name
               (Var.name v));
        check_distinct rest
  in
  check_distinct assigns;
  { name; guard; assigns }

let name a = a.name
let guard a = a.guard
let assigns a = a.assigns
let enabled a s = Expr.eval s a.guard

let execute a s =
  let values = List.map (fun (v, e) -> (v, Expr.eval_num s e)) a.assigns in
  let s' = State.copy s in
  List.iter (fun (v, x) -> State.set s' v x) values;
  s'

let reads a =
  List.fold_left
    (fun acc (_, e) -> Var.Set.union acc (Expr.reads_num e))
    (Expr.reads a.guard) a.assigns

let writes a =
  List.fold_left (fun acc (v, _) -> Var.Set.add v acc) Var.Set.empty a.assigns

let touches a = Var.Set.union (reads a) (writes a)
let rename a name = { a with name }

let interferes a b =
  let wa = writes a and wb = writes b in
  (not (Var.Set.is_empty (Var.Set.inter wa (touches b))))
  || not (Var.Set.is_empty (Var.Set.inter wb (touches a)))

let pp ppf a =
  let pp_targets ppf assigns =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (v, _) -> Var.pp ppf v)
      ppf assigns
  in
  let pp_rhs ppf assigns =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (_, e) -> Expr.pp_num ppf e)
      ppf assigns
  in
  match a.assigns with
  | [] -> Format.fprintf ppf "@[<hov 2>%s:@ %a ->@ skip@]" a.name Expr.pp a.guard
  | _ ->
      Format.fprintf ppf "@[<hov 2>%s:@ %a ->@ %a := %a@]" a.name Expr.pp
        a.guard pp_targets a.assigns pp_rhs a.assigns

let to_string a = Format.asprintf "%a" pp a
