(** Variable environments.

    An environment is the mutable registry in which a program's variables
    are declared. It fixes the dense indexing used by {!State.t} and offers
    helpers for declaring indexed families such as [c.0 .. c.(n-1)], the
    per-process variables ubiquitous in the paper's protocols. *)

type t

val create : unit -> t

val fresh : t -> string -> Domain.t -> Var.t
(** Declare a new variable. Names must be unique within the environment.
    @raise Invalid_argument on a duplicate name. *)

val fresh_family : t -> string -> int -> Domain.t -> Var.t array
(** [fresh_family env base n d] declares [base.0], ..., [base.(n-1)], all
    with domain [d], in index order. *)

val lookup : t -> string -> Var.t option
val lookup_exn : t -> string -> Var.t

val var_count : t -> int
val vars : t -> Var.t array
(** All declared variables in index order. The array is fresh. *)

val var_at : t -> int -> Var.t
(** Variable with the given index. @raise Invalid_argument if out of range. *)

val state_space_size : t -> float
(** Product of domain sizes, as a float (it can exceed [max_int]). *)

val pp : Format.formatter -> t -> unit
