type t = { name : string; env : Env.t; actions : Action.t array }

let validate_vars env a =
  Var.Set.iter
    (fun v ->
      match Env.lookup env (Var.name v) with
      | Some v' when Var.equal v v' -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf "Program: action %S uses foreign variable %S"
               (Action.name a) (Var.name v)))
    (Action.touches a)

let make ~name env actions =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let n = Action.name a in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Program.make: duplicate action %S" n);
      Hashtbl.add seen n ();
      validate_vars env a)
    actions;
  { name; env; actions = Array.of_list actions }

let name p = p.name
let env p = p.env
let actions p = Array.copy p.actions
let action_count p = Array.length p.actions

let action_at p i =
  if i < 0 || i >= Array.length p.actions then
    invalid_arg "Program.action_at: out of range";
  p.actions.(i)

let find_action p n =
  Array.find_opt (fun a -> String.equal (Action.name a) n) p.actions

let enabled p s =
  Array.to_list p.actions |> List.filter (fun a -> Action.enabled a s)

let enabled_indices p s =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if Action.enabled p.actions.(i) s then i :: acc else acc)
  in
  go (Array.length p.actions - 1) []

let is_terminal p s = not (Array.exists (fun a -> Action.enabled a s) p.actions)

let add_actions p extra =
  make ~name:p.name p.env (Array.to_list p.actions @ extra)

let restrict p keep =
  {
    p with
    actions = Array.of_list (List.filter keep (Array.to_list p.actions));
  }

let pp ppf p =
  Format.fprintf ppf "@[<v>program %s@,%a@,begin@," p.name Env.pp p.env;
  Array.iteri
    (fun i a ->
      if i > 0 then Format.fprintf ppf "[]@,";
      Format.fprintf ppf "  %a@," Action.pp a)
    p.actions;
  Format.fprintf ppf "end@]"

let to_string p = Format.asprintf "%a" pp p
