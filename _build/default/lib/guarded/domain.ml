type t =
  | Bool
  | Range of { lo : int; hi : int }
  | Enum of { name : string; labels : string array }

let bool = Bool

let range lo hi =
  if hi < lo then invalid_arg "Domain.range: hi < lo";
  Range { lo; hi }

let enum name labels =
  if labels = [] then invalid_arg "Domain.enum: no labels";
  Enum { name; labels = Array.of_list labels }

let size = function
  | Bool -> 2
  | Range { lo; hi } -> hi - lo + 1
  | Enum { labels; _ } -> Array.length labels

let mem d v =
  match d with
  | Bool -> v = 0 || v = 1
  | Range { lo; hi } -> lo <= v && v <= hi
  | Enum { labels; _ } -> 0 <= v && v < Array.length labels

let values = function
  | Bool -> [ 0; 1 ]
  | Range { lo; hi } -> List.init (hi - lo + 1) (fun i -> lo + i)
  | Enum { labels; _ } -> List.init (Array.length labels) (fun i -> i)

let first = function Bool -> 0 | Range { lo; _ } -> lo | Enum _ -> 0

let value_to_string d v =
  if not (mem d v) then Printf.sprintf "<%d!>" v
  else
    match d with
    | Bool -> if v = 0 then "false" else "true"
    | Range _ -> string_of_int v
    | Enum { labels; _ } -> labels.(v)

let pp ppf = function
  | Bool -> Format.pp_print_string ppf "bool"
  | Range { lo; hi } -> Format.fprintf ppf "%d..%d" lo hi
  | Enum { name; labels } ->
      Format.fprintf ppf "%s{%s}" name (String.concat "," (Array.to_list labels))

let equal a b =
  match (a, b) with
  | Bool, Bool -> true
  | Range { lo = l1; hi = h1 }, Range { lo = l2; hi = h2 } -> l1 = l2 && h1 = h2
  | Enum { name = n1; labels = l1 }, Enum { name = n2; labels = l2 } ->
      n1 = n2 && l1 = l2
  | (Bool | Range _ | Enum _), _ -> false
