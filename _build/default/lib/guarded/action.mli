(** Guarded actions.

    An action is [guard -> statement] (Section 2): a boolean guard over the
    program variables and a simultaneous multiple assignment. The statement
    always terminates; executing an action in a state where its guard holds
    yields a new state.

    Read and write sets are derived from the syntax; the paper's
    constraint-graph definition (Section 4) is phrased in terms of them. *)

type t = private {
  name : string;
  guard : Expr.boolean;
  assigns : (Var.t * Expr.num) list;
}

val make : name:string -> guard:Expr.boolean -> (Var.t * Expr.num) list -> t
(** Build an action. The left-hand sides must be distinct.
    @raise Invalid_argument on duplicate assignment targets. *)

val name : t -> string
val guard : t -> Expr.boolean
val assigns : t -> (Var.t * Expr.num) list

val enabled : t -> State.t -> bool
(** Does the guard hold in this state? *)

val execute : t -> State.t -> State.t
(** Apply the simultaneous assignment: all right-hand sides are evaluated in
    the pre-state, then written. The input state is not modified.
    @raise State.Domain_violation if a computed value leaves its domain. *)

val reads : t -> Var.Set.t
(** Variables read: guard variables plus right-hand-side variables. *)

val writes : t -> Var.Set.t
(** Variables written: the assignment targets. *)

val touches : t -> Var.Set.t
(** [reads ∪ writes]. *)

val rename : t -> string -> t

val interferes : t -> t -> bool
(** Do the actions conflict when executed concurrently: one writes what the
    other reads or writes? Used by the distributed daemon. *)

val pp : Format.formatter -> t -> unit
(** Paper-style rendering: [name: guard -> x, y := e1, e2]. *)

val to_string : t -> string
