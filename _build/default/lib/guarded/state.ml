type t = int array

exception Domain_violation of Var.t * int

let make env =
  let vs = Env.vars env in
  Array.map (fun v -> Domain.first (Var.domain v)) vs

let init env f =
  let vs = Env.vars env in
  Array.map
    (fun v ->
      let x = f v in
      if not (Domain.mem (Var.domain v) x) then raise (Domain_violation (v, x));
      x)
    vs

let get s v = s.(Var.index v)

let set s v x =
  if not (Domain.mem (Var.domain v) x) then raise (Domain_violation (v, x));
  s.(Var.index v) <- x

let set_corrupt s v x = s.(Var.index v) <- x

let of_list env bindings =
  let s = make env in
  List.iter (fun (v, x) -> set s v x) bindings;
  s

let in_domain env s =
  let vs = Env.vars env in
  Array.for_all (fun v -> Domain.mem (Var.domain v) s.(Var.index v)) vs

let copy = Array.copy
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b
let hash (s : t) = Hashtbl.hash s
let get_index (s : t) i = s.(i)
let set_index (s : t) i x = s.(i) <- x
let blit ~src ~dst = Array.blit src 0 dst 0 (Array.length src)
let dim = Array.length
let to_array = Array.copy
let of_array a = a

let pp env ppf s =
  let vs = Env.vars env in
  Format.fprintf ppf "{@[<hov>";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%s=%s" (Var.name v)
        (Domain.value_to_string (Var.domain v) s.(Var.index v)))
    vs;
  Format.fprintf ppf "@]}"

let to_string env s = Format.asprintf "%a" (pp env) s
