(** Expressions over program variables.

    Guards and assignment right-hand sides are abstract syntax, not OCaml
    closures, for two reasons that matter to the paper's method:

    - the {e read set} of an action is derived from its syntax, and the
      constraint-graph definition (Section 4) is stated in terms of the
      variables an action reads and writes;
    - programs and constraints can be pretty-printed in notation close to
      the paper's, and re-parsed by {!Dsl}.

    [num] is integer-valued, [boolean] is a state predicate. Division and
    modulus follow OCaml semantics and raise [Division_by_zero] on a zero
    divisor. *)

type num =
  | Const of int
  | Var of Var.t
  | Neg of num
  | Add of num * num
  | Sub of num * num
  | Mul of num * num
  | Div of num * num
  | Mod of num * num
  | Min of num * num
  | Max of num * num
  | Ite of boolean * num * num  (** if-then-else *)

and boolean =
  | True
  | False
  | Cmp of cmp * num * num
  | Not of boolean
  | And of boolean * boolean
  | Or of boolean * boolean
  | Implies of boolean * boolean
  | Iff of boolean * boolean

and cmp = Eq | Ne | Lt | Le | Gt | Ge

(** {1 Construction} *)

val int : int -> num
val var : Var.t -> num

val tt : boolean
val ff : boolean
val bvar : Var.t -> boolean
(** A boolean variable as a predicate: [bvar v] holds when [v = 1]. *)

val ( + ) : num -> num -> num
val ( - ) : num -> num -> num
val ( * ) : num -> num -> num
val ( / ) : num -> num -> num
val ( mod ) : num -> num -> num
val neg : num -> num
val min_ : num -> num -> num
val max_ : num -> num -> num
val ite : boolean -> num -> num -> num

val ( = ) : num -> num -> boolean
val ( <> ) : num -> num -> boolean
val ( < ) : num -> num -> boolean
val ( <= ) : num -> num -> boolean
val ( > ) : num -> num -> boolean
val ( >= ) : num -> num -> boolean

val not_ : boolean -> boolean
val ( && ) : boolean -> boolean -> boolean
val ( || ) : boolean -> boolean -> boolean
val ( ==> ) : boolean -> boolean -> boolean
val ( <=> ) : boolean -> boolean -> boolean

val conj : boolean list -> boolean
(** Conjunction of a list; [conj [] = tt]. *)

val disj : boolean list -> boolean
(** Disjunction of a list; [disj [] = ff]. *)

val forall : 'a list -> ('a -> boolean) -> boolean
(** Finite universal quantification, expanded at construction time — the
    paper's [(∀ k :: ...)] over process indices. *)

val exists : 'a list -> ('a -> boolean) -> boolean

(** {1 Evaluation} *)

val eval_num : State.t -> num -> int
val eval : State.t -> boolean -> bool

(** {1 Analysis} *)

val reads_num : num -> Var.Set.t
val reads : boolean -> Var.Set.t

val simplify_num : num -> num
(** Constant folding and local algebraic identities; semantics-preserving. *)

val simplify : boolean -> boolean

val subst_num : (Var.t -> num option) -> num -> num
(** Substitute variables by expressions; [None] leaves a variable as is. *)

val subst : (Var.t -> num option) -> boolean -> boolean

(** {1 Printing} *)

val pp_num : Format.formatter -> num -> unit
val pp : Format.formatter -> boolean -> unit
val num_to_string : num -> string
val to_string : boolean -> string

val equal_num : num -> num -> bool
val equal : boolean -> boolean -> bool
