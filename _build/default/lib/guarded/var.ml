type t = { name : string; index : int; domain : Domain.t }

let make ~name ~index ~domain = { name; index; domain }
let name v = v.name
let index v = v.index
let domain v = v.domain
let equal a b = a.index = b.index && String.equal a.name b.name
let compare a b = compare (a.index, a.name) (b.index, b.name)
let hash v = v.index
let pp ppf v = Format.pp_print_string ppf v.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
