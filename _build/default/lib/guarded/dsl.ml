type error = { line : int; column : int; message : string }

exception Parse_error of error

let pp_error ppf e =
  Format.fprintf ppf "parse error at %d:%d: %s" e.line e.column e.message

(* --- Lexer --- *)

type token =
  | IDENT of string
  | INT of int
  | KW_PROGRAM
  | KW_VAR
  | KW_BEGIN
  | KW_END
  | KW_BOOL
  | KW_SKIP
  | KW_TRUE
  | KW_FALSE
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_MIN
  | KW_MAX
  | KW_MOD
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | DOTDOT
  | ARROW
  | ASSIGN
  | BOX
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | AND
  | OR
  | NOT
  | IMPLIES
  | IFF
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | KW_PROGRAM -> "'program'"
  | KW_VAR -> "'var'"
  | KW_BEGIN -> "'begin'"
  | KW_END -> "'end'"
  | KW_BOOL -> "'bool'"
  | KW_SKIP -> "'skip'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | KW_IF -> "'if'"
  | KW_THEN -> "'then'"
  | KW_ELSE -> "'else'"
  | KW_MIN -> "'min'"
  | KW_MAX -> "'max'"
  | KW_MOD -> "'mod'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOTDOT -> "'..'"
  | ARROW -> "'->'"
  | ASSIGN -> "':='"
  | BOX -> "'[]'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EQ -> "'='"
  | NE -> "'<>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | AND -> "'/\\'"
  | OR -> "'\\/'"
  | NOT -> "'~'"
  | IMPLIES -> "'=>'"
  | IFF -> "'<=>'"
  | EOF -> "end of input"

type located = { tok : token; tline : int; tcol : int }

let keyword = function
  | "program" -> Some KW_PROGRAM
  | "var" -> Some KW_VAR
  | "begin" -> Some KW_BEGIN
  | "end" -> Some KW_END
  | "bool" -> Some KW_BOOL
  | "skip" -> Some KW_SKIP
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "min" -> Some KW_MIN
  | "max" -> Some KW_MAX
  | "mod" -> Some KW_MOD
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

let lex (src : string) : located list =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let fail message = raise (Parse_error { line = !line; column = !col; message }) in
  let tokens = ref [] in
  let emit tok = tokens := { tok; tline = !line; tcol = !col } :: !tokens in
  let i = ref 0 in
  let advance k =
    for _ = 1 to k do
      (if !i < n && src.[!i] = '\n' then begin
         incr line;
         col := 0
       end);
      incr i;
      incr col
    done
  in
  let peek off = if !i + off < n then Some src.[!i + off] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance 1
    else if c = '(' && peek 1 = Some '*' then begin
      (* comment: skip to the matching close, allowing nesting *)
      let depth = ref 1 in
      advance 2;
      while !depth > 0 && !i < n do
        if peek 0 = Some '(' && peek 1 = Some '*' then begin
          incr depth;
          advance 2
        end
        else if peek 0 = Some '*' && peek 1 = Some ')' then begin
          decr depth;
          advance 2
        end
        else advance 1
      done;
      if !depth > 0 then fail "unterminated comment"
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      (* identifiers may not end with a dot (so "x.." lexes as x, ..) *)
      while !j > !i && src.[!j - 1] = '.' do
        decr j
      done;
      let word = String.sub src !i (!j - !i) in
      (match keyword word with Some kw -> emit kw | None -> emit (IDENT word));
      advance (String.length word)
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      emit (INT (int_of_string word));
      advance (String.length word)
    end
    else begin
      let two = match peek 1 with Some c2 -> Printf.sprintf "%c%c" c c2 | None -> "" in
      let three =
        match (peek 1, peek 2) with
        | Some c2, Some c3 -> Printf.sprintf "%c%c%c" c c2 c3
        | _ -> ""
      in
      if three = "<=>" then begin
        emit IFF;
        advance 3
      end
      else
        match two with
        | ".." ->
            emit DOTDOT;
            advance 2
        | "->" ->
            emit ARROW;
            advance 2
        | ":=" ->
            emit ASSIGN;
            advance 2
        | "[]" ->
            emit BOX;
            advance 2
        | "<>" ->
            emit NE;
            advance 2
        | "<=" ->
            emit LE;
            advance 2
        | ">=" ->
            emit GE;
            advance 2
        | "/\\" ->
            emit AND;
            advance 2
        | "\\/" ->
            emit OR;
            advance 2
        | "=>" ->
            emit IMPLIES;
            advance 2
        | _ -> (
            match c with
            | '(' ->
                emit LPAREN;
                advance 1
            | ')' ->
                emit RPAREN;
                advance 1
            | '{' ->
                emit LBRACE;
                advance 1
            | '}' ->
                emit RBRACE;
                advance 1
            | ',' ->
                emit COMMA;
                advance 1
            | ';' ->
                emit SEMI;
                advance 1
            | ':' ->
                emit COLON;
                advance 1
            | '+' ->
                emit PLUS;
                advance 1
            | '-' ->
                emit MINUS;
                advance 1
            | '*' ->
                emit STAR;
                advance 1
            | '/' ->
                emit SLASH;
                advance 1
            | '=' ->
                emit EQ;
                advance 1
            | '<' ->
                emit LT;
                advance 1
            | '>' ->
                emit GT;
                advance 1
            | '~' ->
                emit NOT;
                advance 1
            | c -> fail (Printf.sprintf "unexpected character %C" c))
    end
  done;
  emit EOF;
  List.rev !tokens

(* --- Parser --- *)

type parser_state = { toks : located array; mutable pos : int; env : Env.t }

let current p = p.toks.(p.pos)

let fail_at (l : located) message =
  raise (Parse_error { line = l.tline; column = l.tcol; message })

let failp p message = fail_at (current p) message

let peek_tok p = (current p).tok

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let eat p tok =
  if peek_tok p = tok then advance p
  else
    failp p
      (Printf.sprintf "expected %s but found %s" (token_to_string tok)
         (token_to_string (peek_tok p)))

let lookup_var p name =
  match Env.lookup p.env name with
  | Some v -> v
  | None -> failp p (Printf.sprintf "unknown variable %S" name)

(* Integer expressions. Precedence, loosest first: additive, then
   multiplicative, then unary minus, then atoms. *)
let rec parse_num_expr p = parse_additive p

and parse_additive p =
  let lhs = ref (parse_multiplicative p) in
  let continue = ref true in
  while !continue do
    match peek_tok p with
    | PLUS ->
        advance p;
        lhs := Expr.Add (!lhs, parse_multiplicative p)
    | MINUS ->
        advance p;
        lhs := Expr.Sub (!lhs, parse_multiplicative p)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative p =
  let lhs = ref (parse_unary p) in
  let continue = ref true in
  while !continue do
    match peek_tok p with
    | STAR ->
        advance p;
        lhs := Expr.Mul (!lhs, parse_unary p)
    | SLASH ->
        advance p;
        lhs := Expr.Div (!lhs, parse_unary p)
    | KW_MOD ->
        advance p;
        lhs := Expr.Mod (!lhs, parse_unary p)
    | _ -> continue := false
  done;
  !lhs

and parse_unary p =
  match peek_tok p with
  | MINUS -> (
      advance p;
      match peek_tok p with
      | INT n ->
          advance p;
          Expr.Const (-n)
      | _ -> Expr.Neg (parse_unary p))
  | _ -> parse_num_atom p

and parse_num_atom p =
  match peek_tok p with
  | INT n ->
      advance p;
      Expr.Const n
  | IDENT name ->
      advance p;
      Expr.Var (lookup_var p name)
  | KW_MIN ->
      advance p;
      eat p LPAREN;
      let a = parse_num_expr p in
      eat p COMMA;
      let b = parse_num_expr p in
      eat p RPAREN;
      Expr.Min (a, b)
  | KW_MAX ->
      advance p;
      eat p LPAREN;
      let a = parse_num_expr p in
      eat p COMMA;
      let b = parse_num_expr p in
      eat p RPAREN;
      Expr.Max (a, b)
  | LPAREN -> (
      advance p;
      match peek_tok p with
      | KW_IF ->
          advance p;
          let c = parse_bexp_expr p in
          eat p KW_THEN;
          let a = parse_num_expr p in
          eat p KW_ELSE;
          let b = parse_num_expr p in
          eat p RPAREN;
          Expr.Ite (c, a, b)
      | _ ->
          let e = parse_num_expr p in
          eat p RPAREN;
          e)
  | t -> failp p (Printf.sprintf "expected an expression, found %s" (token_to_string t))

(* Boolean expressions. Precedence, loosest first:
   => and <=> < \/ < /\ < ~ < atoms. *)
and parse_bexp_expr p =
  let lhs = parse_disj p in
  match peek_tok p with
  | IMPLIES ->
      advance p;
      Expr.Implies (lhs, parse_bexp_expr p)
  | IFF ->
      advance p;
      Expr.Iff (lhs, parse_disj p)
  | _ -> lhs

and parse_disj p =
  let lhs = ref (parse_conj p) in
  while peek_tok p = OR do
    advance p;
    lhs := Expr.Or (!lhs, parse_conj p)
  done;
  !lhs

and parse_conj p =
  let lhs = ref (parse_neg p) in
  while peek_tok p = AND do
    advance p;
    lhs := Expr.And (!lhs, parse_neg p)
  done;
  !lhs

and parse_neg p =
  match peek_tok p with
  | NOT ->
      advance p;
      Expr.Not (parse_neg p)
  | _ -> parse_bool_atom p

and parse_bool_atom p =
  match peek_tok p with
  | KW_TRUE ->
      advance p;
      Expr.True
  | KW_FALSE ->
      advance p;
      Expr.False
  | LPAREN -> (
      (* backtracking: a '(' opens either a numeric atom of a comparison or
         a parenthesized boolean *)
      let saved = p.pos in
      match parse_comparison p with
      | cmp -> cmp
      | exception Parse_error _ ->
          p.pos <- saved;
          advance p;
          let b = parse_bexp_expr p in
          eat p RPAREN;
          b)
  | _ -> parse_comparison p

and parse_comparison p =
  let lhs = parse_num_expr p in
  let cmp =
    match peek_tok p with
    | EQ -> Expr.Eq
    | NE -> Expr.Ne
    | LT -> Expr.Lt
    | LE -> Expr.Le
    | GT -> Expr.Gt
    | GE -> Expr.Ge
    | t ->
        failp p (Printf.sprintf "expected a comparison, found %s" (token_to_string t))
  in
  advance p;
  let rhs = parse_num_expr p in
  Expr.Cmp (cmp, lhs, rhs)

(* Action names (and program names) may contain dashes, which lex as MINUS:
   re-join the fragments up to the given stop condition. *)
let parse_name p ~stop =
  let buf = Buffer.create 16 in
  let continue = ref true in
  while !continue do
    match peek_tok p with
    | _ when stop (peek_tok p) -> continue := false
    | IDENT s ->
        Buffer.add_string buf s;
        advance p
    | INT n ->
        Buffer.add_string buf (string_of_int n);
        advance p
    | MINUS ->
        Buffer.add_char buf '-';
        advance p
    | t -> failp p (Printf.sprintf "unexpected %s in name" (token_to_string t))
  done;
  if Buffer.length buf = 0 then failp p "expected a name";
  Buffer.contents buf

let parse_statement p =
  match peek_tok p with
  | KW_SKIP ->
      advance p;
      []
  | _ ->
      let rec lhs_list acc =
        match peek_tok p with
        | IDENT name ->
            advance p;
            let v = lookup_var p name in
            if peek_tok p = COMMA then begin
              advance p;
              lhs_list (v :: acc)
            end
            else List.rev (v :: acc)
        | t ->
            failp p
              (Printf.sprintf "expected an assignment target, found %s"
                 (token_to_string t))
      in
      let targets = lhs_list [] in
      eat p ASSIGN;
      let rec rhs_list acc =
        let e = parse_num_expr p in
        if peek_tok p = COMMA then begin
          advance p;
          rhs_list (e :: acc)
        end
        else List.rev (e :: acc)
      in
      let exprs = rhs_list [] in
      if List.length targets <> List.length exprs then
        failp p
          (Printf.sprintf "%d assignment targets but %d expressions"
             (List.length targets) (List.length exprs));
      List.combine targets exprs

let parse_one_action p =
  let name = parse_name p ~stop:(fun t -> t = COLON) in
  eat p COLON;
  let guard = parse_bexp_expr p in
  eat p ARROW;
  let assigns = parse_statement p in
  Action.make ~name ~guard assigns

let parse_domain p =
  match peek_tok p with
  | KW_BOOL ->
      advance p;
      Domain.bool
  | MINUS | INT _ ->
      let parse_int () =
        match peek_tok p with
        | MINUS -> (
            advance p;
            match peek_tok p with
            | INT n ->
                advance p;
                -n
            | t ->
                failp p
                  (Printf.sprintf "expected an integer, found %s"
                     (token_to_string t)))
        | INT n ->
            advance p;
            n
        | t ->
            failp p
              (Printf.sprintf "expected an integer, found %s" (token_to_string t))
      in
      let lo = parse_int () in
      eat p DOTDOT;
      let hi = parse_int () in
      if hi < lo then failp p "empty range domain";
      Domain.range lo hi
  | IDENT ename ->
      advance p;
      eat p LBRACE;
      let rec labels acc =
        match peek_tok p with
        | IDENT l ->
            advance p;
            if peek_tok p = COMMA then begin
              advance p;
              labels (l :: acc)
            end
            else List.rev (l :: acc)
        | t ->
            failp p (Printf.sprintf "expected a label, found %s" (token_to_string t))
      in
      let ls = labels [] in
      eat p RBRACE;
      Domain.enum ename ls
  | t -> failp p (Printf.sprintf "expected a domain, found %s" (token_to_string t))

let parse_declarations p =
  while peek_tok p = KW_VAR do
    advance p;
    let rec names acc =
      match peek_tok p with
      | IDENT name ->
          advance p;
          if peek_tok p = COMMA then begin
            advance p;
            names (name :: acc)
          end
          else List.rev (name :: acc)
      | t -> failp p (Printf.sprintf "expected a variable name, found %s" (token_to_string t))
    in
    let ns = names [] in
    eat p COLON;
    let domain = parse_domain p in
    List.iter
      (fun name ->
        try ignore (Env.fresh p.env name domain)
        with Invalid_argument msg -> failp p msg)
      ns;
    if peek_tok p = SEMI then advance p
  done

let parse_program_tokens p =
  eat p KW_PROGRAM;
  let name = parse_name p ~stop:(fun t -> t = KW_VAR || t = KW_BEGIN) in
  parse_declarations p;
  eat p KW_BEGIN;
  let rec actions acc =
    let a = parse_one_action p in
    match peek_tok p with
    | BOX ->
        advance p;
        actions (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  let acts = if peek_tok p = KW_END then [] else actions [] in
  eat p KW_END;
  (try Program.make ~name p.env acts
   with Invalid_argument msg -> failp p msg)

let make_state env src = { toks = Array.of_list (lex src); pos = 0; env }

let wrap f = try Ok (f ()) with Parse_error e -> Error e

let finish p value =
  match peek_tok p with
  | EOF -> value
  | t -> failp p (Printf.sprintf "trailing input: %s" (token_to_string t))

let parse_program src =
  wrap (fun () ->
      let env = Env.create () in
      let p = make_state env src in
      let prog = parse_program_tokens p in
      finish p (env, prog))

let parse_bexp env src =
  wrap (fun () ->
      let p = make_state env src in
      finish p (parse_bexp_expr p))

let parse_num env src =
  wrap (fun () ->
      let p = make_state env src in
      finish p (parse_num_expr p))

let parse_action env src =
  wrap (fun () ->
      let p = make_state env src in
      finish p (parse_one_action p))

let unwrap = function
  | Ok v -> v
  | Error e -> raise (Parse_error e)

let parse_program_exn src = unwrap (parse_program src)
let parse_bexp_exn env src = unwrap (parse_bexp env src)
let parse_num_exn env src = unwrap (parse_num env src)
let parse_action_exn env src = unwrap (parse_action env src)
